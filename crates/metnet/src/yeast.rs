//! The S. cerevisiae metabolic networks of the paper (Figs. 3–5).
//!
//! * **Network I** — 62 internal metabolites × 78 reactions (47
//!   irreversible, 31 reversible); the paper computes **1,515,314 EFMs**
//!   for it (Tables II–III).
//! * **Network II** — Network I plus glucose uptake kinase, glycerol
//!   re-uptake, and oxidative phosphorylation, with three reactions made
//!   reversible; 63 internal metabolites × 83 reactions; the paper computes
//!   **49,764,544 EFMs** for it (Table IV).
//!
//! Transcription notes (documented substitutions / interpretations):
//! * `mit`-suffixed metabolites (mitochondrial compartment) are internal;
//!   `ext`-suffixed metabolites are external, per the paper's convention.
//! * `BIO` (biomass, produced by R70) is declared external: nothing
//!   consumes it, the paper's count of 62 internal metabolites is only
//!   consistent with biomass leaving the system, and the source models
//!   (Trinh et al.) treat biomass as an external product.
//! * Fig. 4 is captioned "the reversible reactions"; the OCR of four
//!   transport reactions (R94r, R95r, R96r, R97r) shows a one-way arrow,
//!   but the caption and the `r` suffix take precedence: they are encoded
//!   reversible.

use crate::model::MetabolicNetwork;
use crate::parser::parse_network;

/// Reaction listing for Network I (Figs. 3 and 4).
pub const NETWORK_I_TEXT: &str = "\
-EXTERNAL BIO
# ---- irreversible reactions (Fig. 3) ----
R4   : F6P + ATP => FDP + ADP
R5   : FDP => F6P
R9   : PYR + ATP => PEP + ADP
R10  : PEP + ADP => PYR + ATP
R12  : GL3P + FAD_mit => DHAP + FADH_mit
R26  : GL3P => GLY
R15  : G6P + 2 NADP => 2 NADPH + CO2 + RL5P
R21  : ACCOA + OA => COA + CIT
R23  : ICIT + NADP => CO2 + NADPH + AKG
R24  : AKG_mit + NAD_mit + COA_mit => CO2 + NADH_mit + SUCCOA_mit
R27  : FUM + FADH => SUCC + FAD
R33  : PYR + COA => ACCOA + FOR
R37  : PYR + ATP + CO2 => ADP + OA
R38  : PYR => ACEADH + CO2
R40  : ACEADH + NADH => ETOH + NAD
R41  : ACEADH + NADP => AC + NADPH
R42  : OA + ATP => PEP + CO2 + ADP
R43  : PEP + CO2 => OA
R46  : ICIT => GLX + SUCC
R47  : ACCOA + GLX => COA + MAL
R53  : ACEADH + NAD => AC + NADH
R54  : ATP => ADP
R58  : NADH + NAD_mit => NAD + NADH_mit
R59  : NH3ext => NH3
R60  : GLY => GLYext
R62  : GLCext + PEP => G6P + PYR
R63  : AC => ACext
R64  : LAC => LACext
R65  : FOR => FORext
R66  : ETOH => ETOHext
R67  : SUCC => SUCCext
R68  : O2ext => O2
R69  : CO2 => CO2ext
R70  : 7437 G6P + 611 G3P + 437 R5P + 130 E4P + 500 PEP + 2060 PYR + 45 ACCOA_mit + 362 ACCOA + 733 AKG + 1232 OA + 1158 NAD + 434 NAD_mit + 6413 NADPH + 1568 NADPH_mit + 40141 ATP + 5587 NH3 => 1000 BIO + 247 CO2 + 45 COA_mit + 362 COA + 1158 NADH + 434 NADH_mit + 6413 NADP + 1568 NADP_mit + 40141 ADP
R72  : PYR_mit + COA_mit + NAD_mit => ACCOA_mit + NADH_mit + CO2
R73  : OA_mit + ACCOA_mit => CIT_mit + COA_mit
R75  : ICIT_mit + NAD_mit => AKG_mit + NADH_mit + CO2
R76  : ICIT_mit + NADP_mit => AKG_mit + NADPH_mit + CO2
R77  : ICIT + NADP => AKG + NADPH + CO2
R82  : MAL_mit + NADP_mit => PYR_mit + NADPH_mit + CO2
R85  : ETOH_mit + COA_mit + 2 ATP_mit + 2 NAD_mit => ACCOA_mit + 2 ADP_mit + 2 NADH_mit
R86  : ACEADH_mit + NAD_mit => AC_mit + NADH_mit
R87  : ACEADH_mit + NADP_mit => AC_mit + NADPH_mit
R93  : ADP + ATP_mit => ADP_mit + ATP
R98  : FUM_mit + SUCC => SUCC_mit + FUM
R100 : SUCC => SUCC_mit
R101 : AKG + MAL_mit => AKG_mit + MAL
# ---- reversible reactions (Fig. 4) ----
R3r   : G6P <=> F6P
R6r   : FDP <=> G3P + DHAP
R7r   : G3P <=> DHAP
R8r   : G3P + NAD + ADP <=> PEP + ATP + NADH
R13r  : DHAP + NADH <=> GL3P + NAD
R16r  : RL5P <=> R5P
R17r  : RL5P <=> X5P
R18r  : R5P + X5P <=> G3P + S7P
R19r  : X5P + E4P <=> F6P + G3P
R20r  : G3P + S7P <=> E4P + F6P
R22r  : CIT <=> ICIT
R25r  : SUCCOA_mit + ADP_mit <=> ATP_mit + COA_mit + SUCC_mit
R28r  : FUM <=> MAL
R29r  : MAL + NAD <=> NADH + OA
R30r  : PYR + NADH <=> NAD + LAC
R32r  : ACCOA + 2 NADH <=> ETOH + 2 NAD + COA
R36r  : ATP + AC + COA <=> ADP + ACCOA
R74r  : CIT_mit <=> ICIT_mit
R78r  : ACEADH_mit + NADH_mit <=> ETOH_mit + NAD_mit
R79r  : SUCC_mit + FAD_mit <=> FUM_mit + FADH_mit
R80r  : FUM_mit <=> MAL_mit
R81r  : MAL_mit + NAD_mit <=> OA_mit + NADH_mit
R88r  : CIT + MAL_mit <=> CIT_mit + MAL
R89r  : MAL + SUCC_mit <=> MAL_mit + SUCC
R90r  : CIT + ICIT_mit <=> CIT_mit + ICIT
R92r  : AC_mit <=> AC
R94r  : PYR <=> PYR_mit
R95r  : ETOH <=> ETOH_mit
R96r  : MAL_mit <=> MAL
R97r  : ACCOA_mit <=> ACCOA
R102r : OA <=> OA_mit
";

/// Reaction listing for Network II (Fig. 5 applied to Network I).
pub const NETWORK_II_TEXT: &str = "\
-EXTERNAL BIO
# ---- irreversible reactions ----
R1   : GLC + ATP => G6P + ADP
R4   : F6P + ATP => FDP + ADP
R5   : FDP => F6P
R9   : PYR + ATP => PEP + ADP
R10  : PEP + ADP => PYR + ATP
R12  : GL3P + FAD_mit => DHAP + FADH_mit
R14  : GLY + ATP => GL3P + ADP
R26  : GL3P => GLY
R15  : G6P + 2 NADP => 2 NADPH + CO2 + RL5P
R21  : ACCOA + OA => COA + CIT
R23  : ICIT + NADP => CO2 + NADPH + AKG
R24  : AKG_mit + NAD_mit + COA_mit => CO2 + NADH_mit + SUCCOA_mit
R27  : FUM + FADH => SUCC + FAD
R33  : PYR + COA => ACCOA + FOR
R37  : PYR + ATP + CO2 => ADP + OA
R38  : PYR => ACEADH + CO2
R40  : ACEADH + NADH => ETOH + NAD
R41  : ACEADH + NADP => AC + NADPH
R42  : OA + ATP => PEP + CO2 + ADP
R43  : PEP + CO2 => OA
R46  : ICIT => GLX + SUCC
R47  : ACCOA + GLX => COA + MAL
R53  : ACEADH + NAD => AC + NADH
R56  : 24 ADP + 20 NADH_mit + 10 O2 => 24 ATP + 20 NAD_mit
R57  : 24 ADP + 20 FADH + 10 O2 => 24 ATP + 20 FAD
R58  : NADH + NAD_mit => NAD + NADH_mit
R59  : NH3ext => NH3
R61  : GLCext => GLC
R62  : GLC + PEP => G6P + PYR
R64  : LAC => LACext
R65  : FOR => FORext
R66  : ETOH => ETOHext
R67  : SUCC => SUCCext
R68  : O2ext => O2
R69  : CO2 => CO2ext
R70  : 7437 G6P + 611 G3P + 437 R5P + 130 E4P + 500 PEP + 2060 PYR + 45 ACCOA_mit + 362 ACCOA + 733 AKG + 1232 OA + 1158 NAD + 434 NAD_mit + 6413 NADPH + 1568 NADPH_mit + 40141 ATP + 5587 NH3 => 1000 BIO + 247 CO2 + 45 COA_mit + 362 COA + 1158 NADH + 434 NADH_mit + 6413 NADP + 1568 NADP_mit + 40141 ADP
R72  : PYR_mit + COA_mit + NAD_mit => ACCOA_mit + NADH_mit + CO2
R73  : OA_mit + ACCOA_mit => CIT_mit + COA_mit
R75  : ICIT_mit + NAD_mit => AKG_mit + NADH_mit + CO2
R76  : ICIT_mit + NADP_mit => AKG_mit + NADPH_mit + CO2
R77  : ICIT + NADP => AKG + NADPH + CO2
R82  : MAL_mit + NADP_mit => PYR_mit + NADPH_mit + CO2
R85  : ETOH_mit + COA_mit + 2 ATP_mit + 2 NAD_mit => ACCOA_mit + 2 ADP_mit + 2 NADH_mit
R86  : ACEADH_mit + NAD_mit => AC_mit + NADH_mit
R87  : ACEADH_mit + NADP_mit => AC_mit + NADPH_mit
R93  : ADP + ATP_mit => ADP_mit + ATP
R98  : FUM_mit + SUCC => SUCC_mit + FUM
R100 : SUCC => SUCC_mit
R101 : AKG + MAL_mit => AKG_mit + MAL
# ---- reversible reactions ----
R3r   : G6P <=> F6P
R6r   : FDP <=> G3P + DHAP
R7r   : G3P <=> DHAP
R8r   : G3P + NAD + ADP <=> PEP + ATP + NADH
R13r  : DHAP + NADH <=> GL3P + NAD
R16r  : RL5P <=> R5P
R17r  : RL5P <=> X5P
R18r  : R5P + X5P <=> G3P + S7P
R19r  : X5P + E4P <=> F6P + G3P
R20r  : G3P + S7P <=> E4P + F6P
R22r  : CIT <=> ICIT
R25r  : SUCCOA_mit + ADP_mit <=> ATP_mit + COA_mit + SUCC_mit
R28r  : FUM <=> MAL
R29r  : MAL + NAD <=> NADH + OA
R30r  : PYR + NADH <=> NAD + LAC
R32r  : ACCOA + 2 NADH <=> ETOH + 2 NAD + COA
R36r  : ATP + AC + COA <=> ADP + ACCOA
R54r  : ATP <=> ADP
R60r  : GLY <=> GLYext
R63r  : AC <=> ACext
R74r  : CIT_mit <=> ICIT_mit
R78r  : ACEADH_mit + NADH_mit <=> ETOH_mit + NAD_mit
R79r  : SUCC_mit + FAD_mit <=> FUM_mit + FADH_mit
R80r  : FUM_mit <=> MAL_mit
R81r  : MAL_mit + NAD_mit <=> OA_mit + NADH_mit
R88r  : CIT + MAL_mit <=> CIT_mit + MAL
R89r  : MAL + SUCC_mit <=> MAL_mit + SUCC
R90r  : CIT + ICIT_mit <=> CIT_mit + ICIT
R92r  : AC_mit <=> AC
R94r  : PYR <=> PYR_mit
R95r  : ETOH <=> ETOH_mit
R96r  : MAL_mit <=> MAL
R97r  : ACCOA_mit <=> ACCOA
R102r : OA <=> OA_mit
";

/// S. cerevisiae Network I (62 internal metabolites × 78 reactions).
pub fn network_i() -> MetabolicNetwork {
    parse_network(NETWORK_I_TEXT).expect("Network I text is well-formed")
}

/// S. cerevisiae Network II (63 internal metabolites × 83 reactions).
pub fn network_ii() -> MetabolicNetwork {
    parse_network(NETWORK_II_TEXT).expect("Network II text is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_i_dimensions_match_paper() {
        let net = network_i();
        assert_eq!(net.num_reactions(), 78, "Network I must have 78 reactions");
        assert_eq!(net.num_internal(), 62, "Network I must have 62 internal metabolites");
        let nrev = net.reactions.iter().filter(|r| r.reversible).count();
        assert_eq!(nrev, 31, "31 reversible reactions in Fig. 4");
    }

    #[test]
    fn network_ii_dimensions_match_paper() {
        let net = network_ii();
        assert_eq!(net.num_reactions(), 83, "Network II must have 83 reactions");
        assert_eq!(net.num_internal(), 63, "Network II must have 63 internal metabolites");
    }

    #[test]
    fn network_ii_differences_from_network_i() {
        let n1 = network_i();
        let n2 = network_ii();
        // Added reactions.
        for name in ["R1", "R14", "R56", "R57", "R61"] {
            assert!(n1.reaction_index(name).is_none(), "{name} must not be in Network I");
            assert!(n2.reaction_index(name).is_some(), "{name} must be in Network II");
        }
        // Reactions made reversible (name changes R54→R54r etc.).
        for (old, new) in [("R54", "R54r"), ("R60", "R60r"), ("R63", "R63r")] {
            assert!(n1.reaction_index(old).is_some());
            assert!(n2.reaction_index(old).is_none());
            let i = n2.reaction_index(new).unwrap();
            assert!(n2.reactions[i].reversible);
        }
        // GLC is internal in Network II only.
        assert!(n1.metabolite_index("GLC").is_none());
        let glc = n2.metabolite_index("GLC").unwrap();
        assert!(!n2.metabolites[glc].external);
        // R62 uses GLCext in I but GLC in II.
        let r62_1 = &n1.reactions[n1.reaction_index("R62").unwrap()];
        let r62_2 = &n2.reactions[n2.reaction_index("R62").unwrap()];
        let uses = |net: &MetabolicNetwork, r: &crate::model::Reaction, m: &str| {
            net.metabolite_index(m).is_some_and(|i| r.stoich.iter().any(|(mi, _)| *mi == i))
        };
        assert!(uses(&n1, r62_1, "GLCext"));
        assert!(uses(&n2, r62_2, "GLC"));
    }

    #[test]
    fn biomass_is_external() {
        let net = network_i();
        let bio = net.metabolite_index("BIO").unwrap();
        assert!(net.metabolites[bio].external);
    }

    #[test]
    fn biomass_coefficients_exact() {
        let net = network_i();
        let r70 = &net.reactions[net.reaction_index("R70").unwrap()];
        let atp = net.metabolite_index("ATP").unwrap();
        let adp = net.metabolite_index("ADP").unwrap();
        assert_eq!(r70.coefficient(atp).to_f64(), -40141.0);
        assert_eq!(r70.coefficient(adp).to_f64(), 40141.0);
    }

    #[test]
    fn networks_validate() {
        assert!(network_i().validate().is_empty());
        assert!(network_ii().validate().is_empty());
    }

    #[test]
    fn partition_reactions_exist() {
        // The paper's divide-and-conquer partition reactions must be present.
        let n1 = network_i();
        for name in ["R89r", "R74r"] {
            assert!(n1.reaction_index(name).is_some());
        }
        let n2 = network_ii();
        for name in ["R54r", "R90r", "R60r", "R22r"] {
            assert!(n2.reaction_index(name).is_some());
        }
    }
}
