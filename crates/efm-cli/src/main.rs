//! `efm-compute` — command-line elementary flux mode computation.
//!
//! The role of the paper's released `elmocomp` tool: read a metabolic
//! network in the text format of the paper's reaction listings, enumerate
//! its elementary flux modes with a selectable algorithm, and print the
//! modes and per-phase statistics.
//!
//! ```text
//! efm-compute [OPTIONS] <NETWORK-FILE | --builtin NAME>
//!
//!   --builtin <toy|yeast1|yeast2>   use an embedded network
//!   --backend <serial|rayon|cluster> execution backend   [default: serial]
//!   --nodes <N>                     simulated cluster ranks [default: 4]
//!   --memory-limit <BYTES>          per-node memory cap (cluster backend)
//!   --partition <R1,R2,...>         divide-and-conquer partition reactions
//!   --dnc-schedule <serial|static|steal> subset schedule  [default: serial]
//!   --dnc-workers <N>               subset worker threads (0 = one per core)
//!   --ordering <paper|nnz|asis|random> row ordering      [default: paper]
//!   --test <rank|adjacency>         elementarity test    [default: rank]
//!   --float                         f64 arithmetic instead of exact
//!   --no-streaming                  materialize-then-filter candidate generation
//!                                   (legacy; transient buffer breaches memory caps)
//!   --streaming-batch <PAIRS>       pair-batch size of the streaming pipeline
//!                                   [default: 65536]
//!   --spill-budget <BYTES>          compress finished divide-and-conquer subsets
//!                                   and spill them to disk beyond BYTES resident
//!   --max-modes <N>                 abort beyond N intermediate modes
//!   --print-modes <N>               print up to N modes  [default: 20]
//!   --coefficients                  recover numeric coefficients
//!   --quiet                         summary only
//!   --stats                         print network statistics and exit
//!   --suggest-partition <K>         print K suggested partition reactions and exit
//!   --cut-sets <RXN>                minimal cut sets (size ≤ 3) for a target reaction
//!   --yields <SUBSTRATE,PRODUCT>    per-mode product/substrate yields
//!   --export-metatool <FILE>        write the network in Metatool .dat format
//!   --output <FILE>                 write the computed modes to FILE
//!   --output-format <text|packed>   mode file format        [default: text]
//!   --checkpoint <FILE>             snapshot engine state to FILE at iteration boundaries
//!   --checkpoint-every <N>          snapshot every N iterations [default: 1]
//!   --resume <FILE>                 resume an aborted run from a checkpoint FILE
//!   --auto-escalate <K>             on memory abort, retry as divide-and-conquer
//!                                   over suggested splits up to 2^K subsets
//!   --supervise                     run the cluster backend under the self-healing
//!                                   supervisor: restart from the newest checkpoint on
//!                                   transient failures, escalate on memory aborts
//!   --max-restarts <N>              supervisor restart budget [default: 3]
//!   --failover                      degrade instead of restarting when a non-zero
//!                                   rank dies: survivors re-stripe the dead rank's
//!                                   work and continue with N-1 ranks
//!   --heartbeat-ms <MS>             liveness heartbeat period [default: 10]
//!   --fault-plan <SPEC>             inject deterministic faults, e.g.
//!                                   "seed=42;crash@1:phase=communicate,iter=3"
//!   --trace-out <FILE>              write a Chrome trace_event JSON of the run
//!                                   (.jsonl extension switches to a JSONL event log)
//!   --metrics-out <FILE>            write final counters/gauges as JSON
//!   --progress                      live progress line with survivor-count ETA
//!
//! Network files may be in the reaction-per-line format of the paper's
//! figures or in Metatool `.dat` format (auto-detected by the leading
//! `-ENZREV`/`-ENZIRREV` section header).
//! ```

use efm_core::{
    enumerate_divide_conquer_scheduled_with_scalar, enumerate_resumable_with_scalar,
    enumerate_supervised_with_scalar, enumerate_with_escalation_scheduled_scalar, Backend,
    CandidateTest, CheckpointConfig, DncCheckpoint, DncConfig, DncSchedule, EfmOptions, EfmOutcome,
    EngineCheckpoint, RowOrdering, SuperviseConfig,
};
use efm_metnet::{examples, parse_metatool, parse_network, to_metatool, yeast, MetabolicNetwork};
use efm_numeric::{DynInt, F64Tol};
use std::process::ExitCode;

struct Args {
    network: Option<String>,
    builtin: Option<String>,
    backend: String,
    nodes: usize,
    memory_limit: Option<u64>,
    partition: Vec<String>,
    dnc_schedule: String,
    dnc_workers: usize,
    ordering: String,
    test: String,
    kernel: String,
    float: bool,
    no_streaming: bool,
    streaming_batch: Option<u64>,
    spill_budget: Option<u64>,
    max_modes: Option<usize>,
    print_modes: usize,
    coefficients: bool,
    quiet: bool,
    stats: bool,
    suggest_partition: Option<usize>,
    cut_sets: Option<String>,
    yields: Option<String>,
    export_metatool: Option<String>,
    output: Option<String>,
    output_format: String,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    resume: Option<String>,
    auto_escalate: Option<usize>,
    supervise: bool,
    max_restarts: u32,
    failover: bool,
    heartbeat_ms: Option<u64>,
    fault_plan: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    postmortem_dir: Option<String>,
    progress: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: efm-compute [--builtin toy|yeast1|yeast2] [--backend serial|rayon|cluster]\n\
         \x20                 [--nodes N] [--memory-limit BYTES] [--partition R1,R2,...]\n\
         \x20                 [--dnc-schedule serial|static|steal] [--dnc-workers N]\n\
         \x20                 [--ordering paper|nnz|asis|random] [--test rank|adjacency]\n\
         \x20                 [--kernel auto|scalar|simd]\n\
         \x20                 [--float] [--no-streaming] [--streaming-batch PAIRS]\n\
         \x20                 [--spill-budget BYTES]\n\
         \x20                 [--max-modes N] [--print-modes N] [--coefficients]\n\
         \x20                 [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n\
         \x20                 [--auto-escalate K] [--supervise] [--max-restarts N]\n\
         \x20                 [--failover] [--heartbeat-ms MS]\n\
         \x20                 [--fault-plan SPEC] [--trace-out FILE] [--metrics-out FILE]\n\
         \x20                 [--postmortem-dir DIR] [--progress] [--quiet] [NETWORK-FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        network: None,
        builtin: None,
        backend: "serial".into(),
        nodes: 4,
        memory_limit: None,
        partition: Vec::new(),
        dnc_schedule: "serial".into(),
        dnc_workers: 0,
        ordering: "paper".into(),
        test: "rank".into(),
        kernel: "auto".into(),
        float: false,
        no_streaming: false,
        streaming_batch: None,
        spill_budget: None,
        max_modes: None,
        print_modes: 20,
        coefficients: false,
        quiet: false,
        stats: false,
        suggest_partition: None,
        cut_sets: None,
        yields: None,
        export_metatool: None,
        output: None,
        output_format: "text".into(),
        checkpoint: None,
        checkpoint_every: 1,
        resume: None,
        auto_escalate: None,
        supervise: false,
        max_restarts: 3,
        failover: false,
        heartbeat_ms: None,
        fault_plan: None,
        trace_out: None,
        metrics_out: None,
        postmortem_dir: None,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--builtin" => args.builtin = Some(val(&mut it)),
            "--backend" => args.backend = val(&mut it),
            "--nodes" => args.nodes = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--memory-limit" => {
                args.memory_limit = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--partition" => {
                args.partition = val(&mut it).split(',').map(|s| s.trim().to_string()).collect()
            }
            "--dnc-schedule" => args.dnc_schedule = val(&mut it),
            "--dnc-workers" => args.dnc_workers = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--ordering" => args.ordering = val(&mut it),
            "--test" => args.test = val(&mut it),
            "--kernel" => args.kernel = val(&mut it),
            "--float" => args.float = true,
            "--no-streaming" => args.no_streaming = true,
            "--streaming-batch" => {
                args.streaming_batch = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--spill-budget" => {
                args.spill_budget = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--max-modes" => {
                args.max_modes = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--print-modes" => args.print_modes = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--coefficients" => args.coefficients = true,
            "--quiet" => args.quiet = true,
            "--stats" => args.stats = true,
            "--suggest-partition" => {
                args.suggest_partition = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--cut-sets" => args.cut_sets = Some(val(&mut it)),
            "--yields" => args.yields = Some(val(&mut it)),
            "--export-metatool" => args.export_metatool = Some(val(&mut it)),
            "--output" => args.output = Some(val(&mut it)),
            "--output-format" => args.output_format = val(&mut it),
            "--checkpoint" => args.checkpoint = Some(val(&mut it)),
            "--checkpoint-every" => {
                args.checkpoint_every = val(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--resume" => args.resume = Some(val(&mut it)),
            "--auto-escalate" => {
                args.auto_escalate = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--supervise" => args.supervise = true,
            "--max-restarts" => {
                args.max_restarts = val(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--failover" => args.failover = true,
            "--heartbeat-ms" => {
                args.heartbeat_ms = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--fault-plan" => args.fault_plan = Some(val(&mut it)),
            "--trace-out" => args.trace_out = Some(val(&mut it)),
            "--metrics-out" => args.metrics_out = Some(val(&mut it)),
            "--postmortem-dir" => args.postmortem_dir = Some(val(&mut it)),
            "--progress" => args.progress = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => args.network = Some(other.to_string()),
            _ => usage(),
        }
    }
    args
}

fn load_network(args: &Args) -> Result<MetabolicNetwork, String> {
    if let Some(b) = &args.builtin {
        return match b.as_str() {
            "toy" => Ok(examples::toy_network()),
            "yeast1" => Ok(yeast::network_i()),
            "yeast2" => Ok(yeast::network_ii()),
            other => Err(format!("unknown builtin network {other}")),
        };
    }
    let Some(path) = &args.network else {
        return Err("no network file and no --builtin given".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Auto-detect Metatool .dat files by their section headers.
    let is_metatool =
        text.lines().map(str::trim).find(|l| !l.is_empty() && !l.starts_with('#')).is_some_and(
            |l| l.eq_ignore_ascii_case("-enzrev") || l.eq_ignore_ascii_case("-enzirrev"),
        );
    if is_metatool {
        parse_metatool(&text).map_err(|e| format!("metatool parse error in {path}: {e}"))
    } else {
        parse_network(&text).map_err(|e| format!("parse error in {path}: {e}"))
    }
}

fn run<S: efm_core::EfmScalar>(
    net: &MetabolicNetwork,
    args: &Args,
) -> Result<EfmOutcome, efm_core::EfmError> {
    let ordering = match args.ordering.as_str() {
        "paper" => RowOrdering::Paper,
        "nnz" => RowOrdering::FewestNonzeros,
        "asis" => RowOrdering::AsIs,
        "random" => RowOrdering::Random(42),
        _ => usage(),
    };
    let test = match args.test.as_str() {
        "rank" => CandidateTest::Rank,
        "adjacency" => CandidateTest::Adjacency,
        _ => usage(),
    };
    let kernel = args.kernel.parse().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
    });
    let mut opts = EfmOptions {
        ordering,
        test,
        kernel,
        max_modes: args.max_modes,
        streaming: !args.no_streaming,
        spill_budget: args.spill_budget,
        ..Default::default()
    };
    if let Some(batch) = args.streaming_batch {
        opts.streaming_batch = batch.max(1);
    }
    let dnc_schedule = DncSchedule::parse(&args.dnc_schedule).unwrap_or_else(|| {
        eprintln!("error: bad --dnc-schedule {} (want serial|static|steal)", args.dnc_schedule);
        usage();
    });
    let dnc = DncConfig {
        schedule: dnc_schedule,
        workers: args.dnc_workers,
        max_retries: args.max_restarts,
        ..Default::default()
    };
    let backend = match args.backend.as_str() {
        "serial" => Backend::Serial,
        "rayon" => Backend::Rayon,
        "cluster" => {
            let mut cfg = efm_cluster::ClusterConfig::new(args.nodes);
            if let Some(limit) = args.memory_limit {
                cfg = cfg.with_memory_limit(limit);
            }
            if args.failover {
                cfg = cfg.with_failover(true);
            }
            if let Some(ms) = args.heartbeat_ms {
                cfg = cfg.with_heartbeat(std::time::Duration::from_millis(ms.max(1)));
            }
            Backend::Cluster(cfg)
        }
        _ => usage(),
    };
    if args.supervise {
        if !args.partition.is_empty() || args.resume.is_some() {
            eprintln!(
                "error: --supervise excludes --partition and --resume (it manages resume itself)"
            );
            usage();
        }
        // Supervision is a cluster-backend policy; the serial/rayon
        // backends have no ranks to lose.
        let cluster = match &backend {
            Backend::Cluster(cfg) => cfg.clone(),
            _ => {
                eprintln!("error: --supervise requires --backend cluster");
                usage();
            }
        };
        let ckpt_path = args.checkpoint.clone().unwrap_or_else(|| {
            std::env::temp_dir()
                .join(format!("efm-supervise-{}.efck", std::process::id()))
                .to_string_lossy()
                .into_owned()
        });
        let mut sup = SuperviseConfig::new(&ckpt_path)
            .max_restarts(args.max_restarts)
            .max_qsub(args.auto_escalate.unwrap_or(4))
            .with_dnc(dnc.clone());
        sup.checkpoint = sup.checkpoint.every(args.checkpoint_every);
        if let Some(dir) = &args.postmortem_dir {
            sup = sup.with_postmortem_dir(dir);
        }
        if let Some(spec) = &args.fault_plan {
            let plan = efm_cluster::FaultPlan::parse(spec).unwrap_or_else(|e| {
                eprintln!("error: bad --fault-plan: {e}");
                usage();
            });
            sup = sup.with_fault_plan(plan);
        }
        let out = enumerate_supervised_with_scalar::<S>(net, &opts, &cluster, &sup)?;
        if args.checkpoint.is_none() {
            // The supervisor owned a temporary checkpoint; clean it up.
            let _ = std::fs::remove_file(&ckpt_path);
        }
        if !args.quiet && !out.stats.recovery.is_empty() {
            println!("recovery log:\n{}", out.stats.recovery);
        }
        return Ok(out);
    }
    if args.fault_plan.is_some() {
        eprintln!("error: --fault-plan requires --supervise");
        usage();
    }
    if let Some(max_qsub) = args.auto_escalate {
        if !args.partition.is_empty() || args.checkpoint.is_some() || args.resume.is_some() {
            eprintln!("error: --auto-escalate excludes --partition, --checkpoint and --resume");
            usage();
        }
        let out =
            enumerate_with_escalation_scheduled_scalar::<S>(net, &opts, &backend, max_qsub, &dnc)?;
        if !args.quiet {
            for a in &out.attempts {
                let what = if a.qsub == 0 {
                    "direct".to_string()
                } else {
                    format!("divide-and-conquer over {{{}}}", a.partition.join(","))
                };
                match &a.error {
                    Some(e) => println!("escalation: {what} failed: {e}"),
                    None => println!("escalation: {what} succeeded"),
                }
            }
        }
        return Ok(out.outcome);
    }
    if args.partition.is_empty() {
        let resume = match &args.resume {
            Some(path) => {
                let ck = EngineCheckpoint::load(std::path::Path::new(path))?;
                if !args.quiet {
                    println!(
                        "resuming from {path}: {} iterations already completed",
                        ck.iterations_completed()
                    );
                }
                Some(ck)
            }
            None => None,
        };
        let checkpoint =
            args.checkpoint.as_ref().map(|p| CheckpointConfig::new(p).every(args.checkpoint_every));
        enumerate_resumable_with_scalar::<S>(
            net,
            &opts,
            &backend,
            resume.as_ref(),
            checkpoint.as_ref(),
        )
    } else {
        // Divide-and-conquer checkpointing is per-subset progress (EFCK
        // v4): --checkpoint records each completed subset, --resume skips
        // the recorded ones.
        let mut dnc = dnc;
        if let Some(path) = &args.resume {
            if args.checkpoint.as_ref().is_some_and(|c| c != path) {
                eprintln!(
                    "error: --checkpoint and --resume must name the same file \
                     for divide-and-conquer runs"
                );
                usage();
            }
            dnc.checkpoint = Some(CheckpointConfig::new(path));
            dnc.resume = true;
            if !args.quiet {
                if let Ok(ck) = DncCheckpoint::load(std::path::Path::new(path)) {
                    println!(
                        "resuming from {path}: {} of {} subsets already completed",
                        ck.done.len(),
                        1usize << ck.qsub
                    );
                }
            }
        } else if let Some(path) = &args.checkpoint {
            dnc.checkpoint = Some(CheckpointConfig::new(path));
        }
        let names: Vec<&str> = args.partition.iter().map(String::as_str).collect();
        enumerate_divide_conquer_scheduled_with_scalar::<S>(net, &opts, &names, &backend, &dnc)
    }
}

/// Writes `--trace-out` / `--metrics-out` files from the global telemetry
/// snapshot. A `.jsonl` trace path selects the line-oriented event log;
/// anything else gets Chrome `trace_event` JSON.
fn export_telemetry(args: &Args) -> Result<(), String> {
    if args.trace_out.is_none() && args.metrics_out.is_none() {
        return Ok(());
    }
    let snap = efm_obs::snapshot();
    if let Some(path) = &args.trace_out {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        );
        let res = if path.ends_with(".jsonl") {
            efm_obs::export::write_jsonl(&snap, &mut f)
        } else {
            efm_obs::export::write_chrome_trace(&snap, &mut f)
        };
        res.map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote trace ({} events, {} tracks) to {path}",
            snap.event_count(),
            snap.tracks.len()
        );
    }
    if let Some(path) = &args.metrics_out {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        );
        efm_obs::export::write_metrics(&snap, &mut f)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics ({} counters) to {path}", snap.counters.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let net = match load_network(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.quiet {
        println!(
            "network: {} internal metabolites, {} reactions ({} reversible)",
            net.num_internal(),
            net.num_reactions(),
            net.reactions.iter().filter(|r| r.reversible).count()
        );
    }
    if let Some(path) = &args.export_metatool {
        if let Err(e) = std::fs::write(path, to_metatool(&net)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Metatool .dat to {path}");
    }
    if args.stats {
        let s = efm_metnet::stats::network_stats(&net);
        print!("{}", efm_metnet::stats::format_stats(&s));
        let comp = efm_metnet::stats::reaction_components(&net);
        let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
        println!("connected components (reaction graph): {ncomp}");
        return ExitCode::SUCCESS;
    }
    if let Some(k) = args.suggest_partition {
        let (red, _) = efm_metnet::compress(&net);
        let suggestion = efm_core::suggest_partition(&net, &red, k);
        println!(
            "suggested divide-and-conquer partition ({} of {} requested): {}",
            suggestion.len(),
            k,
            suggestion.join(", ")
        );
        return ExitCode::SUCCESS;
    }
    // --postmortem-dir implies recording: the flight recorder can only
    // dump a trace tail if the ring buffers were filling.
    if args.trace_out.is_some() || args.metrics_out.is_some() || args.postmortem_dir.is_some() {
        efm_obs::set_enabled(true);
    }
    if args.progress {
        efm_obs::progress::set_progress(true);
    }
    let outcome = if args.float { run::<F64Tol>(&net, &args) } else { run::<DynInt>(&net, &args) };
    // Export telemetry even on failure: an aborted run's trace is exactly
    // what you want when diagnosing the abort.
    if let Err(e) = export_telemetry(&args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            // Flight recorder: a terminal failure dumps everything a
            // postmortem needs, even when the run was not supervised.
            if let Some(dir) = &args.postmortem_dir {
                match efm_obs::postmortem::write_bundle(
                    std::path::Path::new(dir),
                    "cli-error",
                    &e.to_string(),
                    &[],
                ) {
                    Ok(p) => eprintln!("[postmortem] bundle written to {}", p.display()),
                    Err(we) => eprintln!("[postmortem] failed to write bundle: {we}"),
                }
            }
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        println!(
            "reduced network: {} x {} ({:?})",
            outcome.reduced.stoich.rows(),
            outcome.reduced.num_reduced(),
            outcome.compression
        );
    }
    println!("elementary flux modes: {}", outcome.efms.len());
    println!(
        "candidates generated:  {}   peak intermediate modes: {}",
        outcome.stats.candidates_generated, outcome.stats.peak_modes
    );
    if !args.quiet {
        println!(
            "tree-pruned: {}   dedup hits: {}   rank tests: {}   comm: {} msgs / {} bytes",
            outcome.stats.tree_pruned,
            outcome.stats.dedup_hits,
            outcome.stats.rank_tests,
            outcome.stats.comm_messages,
            outcome.stats.comm_bytes
        );
        if outcome.stats.stream_batches > 0 || outcome.stats.spill_bytes > 0 {
            println!(
                "streaming: {} batches   peak transient: {} B   spilled stripes: {} B",
                outcome.stats.stream_batches,
                outcome.stats.peak_transient_bytes,
                outcome.stats.spill_bytes
            );
        }
    }
    let ph = &outcome.stats.phases;
    println!(
        "phase times: gen={:.3}s dedup={:.3}s ranktest={:.3}s comm={:.3}s merge={:.3}s total={:.3}s",
        ph.generate.as_secs_f64(),
        ph.dedup.as_secs_f64(),
        ph.rank_test.as_secs_f64(),
        ph.communicate.as_secs_f64(),
        ph.merge.as_secs_f64(),
        outcome.stats.total_time.as_secs_f64()
    );
    if !outcome.subsets.is_empty() && !args.quiet {
        println!("divide-and-conquer subsets:");
        for s in &outcome.subsets {
            let note = if s.skipped_empty {
                "  (provably empty, skipped)".to_string()
            } else if s.retries > 0 {
                format!("  ({} restarts)", s.retries)
            } else {
                String::new()
            };
            println!(
                "  [{}] {:40} EFMs={:<10} candidates={:<14} time={:.3}s{}",
                s.id,
                s.pattern,
                s.efm_count,
                s.stats.candidates_generated,
                s.stats.total_time.as_secs_f64(),
                note
            );
        }
    }
    if let Some(path) = &args.output {
        let result = std::fs::File::create(path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            match args.output_format.as_str() {
                "packed" => efm_core::io::write_packed(&outcome.efms, &mut w),
                _ => efm_core::io::write_text(&outcome.efms, &mut w),
            }
        });
        match result {
            Ok(()) => {
                println!("wrote {} modes to {path} ({})", outcome.efms.len(), args.output_format)
            }
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(target_name) = &args.cut_sets {
        match net.reaction_index(target_name) {
            Some(target) => {
                let cuts = efm_core::minimal_cut_sets(&outcome.efms, target, 3);
                println!("minimal cut sets (size ≤ 3) for {target_name}:");
                for cut in cuts {
                    let names: Vec<&str> =
                        cut.iter().map(|&j| net.reactions[j].name.as_str()).collect();
                    println!("  {{{}}}", names.join(", "));
                }
            }
            None => eprintln!("warning: unknown reaction {target_name} for --cut-sets"),
        }
    }
    if let Some(spec) = &args.yields {
        let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
        match parts.as_slice() {
            [s, p] => match (net.reaction_index(s), net.reaction_index(p)) {
                (Some(substrate), Some(product)) => {
                    let ys = efm_core::mode_yields(
                        &net,
                        &outcome.reduced,
                        &outcome.efms,
                        substrate,
                        product,
                    );
                    println!("mode yields {p}/{s} (top 10 of {}):", ys.len());
                    for (mode, y) in ys.iter().take(10) {
                        println!("  mode {mode}: {y:.4}");
                    }
                }
                _ => eprintln!("warning: unknown reaction in --yields {spec}"),
            },
            _ => eprintln!("warning: --yields wants SUBSTRATE,PRODUCT"),
        }
    }
    let shown = args.print_modes.min(outcome.efms.len());
    if shown > 0 && !args.quiet {
        println!("first {shown} modes:");
        let rev = net.reversibilities();
        for i in 0..shown {
            let sup = outcome.efms.support(i);
            if args.coefficients {
                match efm_core::recover_flux(&outcome.reduced, &rev, &sup) {
                    Ok(flux) => {
                        let parts: Vec<String> = sup
                            .iter()
                            .map(|&j| format!("{}={}", net.reactions[j].name, flux[j]))
                            .collect();
                        println!("  [{}] {}", i, parts.join(" "));
                    }
                    Err(e) => println!("  [{}] <recovery failed: {e}>", i),
                }
            } else {
                let names: Vec<&str> =
                    sup.iter().map(|&j| net.reactions[j].name.as_str()).collect();
                println!("  [{}] {}", i, names.join(" "));
            }
        }
    }
    ExitCode::SUCCESS
}
