//! End-to-end tests of the `efm-compute` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_efm-compute")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn toy_builtin_end_to_end() {
    let (stdout, _, ok) = run(&["--builtin", "toy"]);
    assert!(ok);
    assert!(stdout.contains("elementary flux modes: 8"), "{stdout}");
}

#[test]
fn divide_and_conquer_via_cli() {
    let (stdout, _, ok) = run(&[
        "--builtin",
        "toy",
        "--partition",
        "r6r,r8r",
        "--backend",
        "cluster",
        "--nodes",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("elementary flux modes: 8"), "{stdout}");
    assert!(stdout.contains("divide-and-conquer subsets:"), "{stdout}");
}

#[test]
fn stats_mode() {
    let (stdout, _, ok) = run(&["--builtin", "yeast1", "--stats"]);
    assert!(ok);
    assert!(stdout.contains("62 internal"), "{stdout}");
    // Network I's structural dead ends: cytosolic FAD/FADH (their only
    // producer R57 exists in Network II) and O2 (consumed by nothing).
    assert!(stdout.contains("dead-end metabolites:"), "{stdout}");
    assert!(stdout.contains("O2"), "{stdout}");
    assert!(stdout.contains("FADH"), "{stdout}");
}

#[test]
fn suggest_partition_mode() {
    let (stdout, _, ok) = run(&["--builtin", "toy", "--suggest-partition", "2"]);
    assert!(ok);
    assert!(stdout.contains("suggested divide-and-conquer partition"), "{stdout}");
    assert!(stdout.contains("r8r"), "{stdout}");
}

#[test]
fn reads_network_file_and_metatool() {
    let dir = std::env::temp_dir().join("efm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let plain = dir.join("net.txt");
    std::fs::write(&plain, "in : Sext => A\nout : A => Pext\n").unwrap();
    let (stdout, _, ok) = run(&[plain.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("elementary flux modes: 1"), "{stdout}");

    let dat = dir.join("net.dat");
    std::fs::write(
        &dat,
        "-ENZREV\n\n-ENZIRREV\nin out\n\n-METINT\nA\n\n-METEXT\nSext Pext\n\n-CAT\nin : Sext = A .\nout : A = Pext .\n",
    )
    .unwrap();
    let (stdout, _, ok) = run(&[dat.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("elementary flux modes: 1"), "{stdout}");
}

#[test]
fn export_metatool_roundtrip() {
    let dir = std::env::temp_dir().join("efm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("toy_export.dat");
    let (_, _, ok) =
        run(&["--builtin", "toy", "--quiet", "--export-metatool", out_path.to_str().unwrap()]);
    assert!(ok);
    let (stdout, _, ok) = run(&[out_path.to_str().unwrap(), "--quiet"]);
    assert!(ok);
    assert!(stdout.contains("elementary flux modes: 8"), "{stdout}");
}

#[test]
fn supervised_run_recovers_from_injected_crash() {
    let (stdout, _, ok) = run(&[
        "--builtin",
        "toy",
        "--backend",
        "cluster",
        "--nodes",
        "3",
        "--supervise",
        "--max-restarts",
        "2",
        "--fault-plan",
        "seed=7;crash@1:phase=communicate,iter=2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("elementary flux modes: 8"), "{stdout}");
    assert!(stdout.contains("recovery log:"), "{stdout}");
    assert!(stdout.contains("injected crash"), "{stdout}");
}

#[test]
fn supervised_run_exhausts_restart_budget() {
    // Crash rank 0 at every iteration: no restart budget can outrun it.
    let plan = "seed=1;crash@0:phase=iteration,iter=0;crash@0:phase=iteration,iter=1;\
                crash@0:phase=iteration,iter=2;crash@0:phase=iteration,iter=3;\
                crash@0:phase=iteration,iter=4;crash@0:phase=iteration,iter=5;\
                crash@0:phase=iteration,iter=6;crash@0:phase=iteration,iter=7";
    let (_, stderr, ok) = run(&[
        "--builtin",
        "toy",
        "--backend",
        "cluster",
        "--nodes",
        "2",
        "--supervise",
        "--max-restarts",
        "1",
        "--fault-plan",
        plan,
    ]);
    assert!(!ok);
    assert!(stderr.contains("exhausted"), "{stderr}");
}

#[test]
fn fault_plan_requires_supervise() {
    let (_, stderr, ok) = run(&[
        "--builtin",
        "toy",
        "--backend",
        "cluster",
        "--fault-plan",
        "seed=1;crash@0:phase=iteration,iter=0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--supervise"), "{stderr}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (_, stderr, ok) = run(&["--builtin", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("unknown builtin"), "{stderr}");
    let (_, stderr, ok) = run(&["/does/not/exist.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn cut_sets_and_yields_flags() {
    let (stdout, _, ok) =
        run(&["--builtin", "toy", "--quiet", "--cut-sets", "r4", "--yields", "r1,r4"]);
    assert!(ok);
    assert!(stdout.contains("minimal cut sets"), "{stdout}");
    assert!(stdout.contains("mode yields"), "{stdout}");
}

#[test]
fn writes_mode_files() {
    let dir = std::env::temp_dir().join("efm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let text = dir.join("modes.txt");
    let packed = dir.join("modes.efms");
    let (_, _, ok) = run(&["--builtin", "toy", "--quiet", "--output", text.to_str().unwrap()]);
    assert!(ok);
    let contents = std::fs::read_to_string(&text).unwrap();
    assert_eq!(contents.lines().count(), 8);
    let (_, _, ok) = run(&[
        "--builtin",
        "toy",
        "--quiet",
        "--output",
        packed.to_str().unwrap(),
        "--output-format",
        "packed",
    ]);
    assert!(ok);
    let bytes = std::fs::read(&packed).unwrap();
    assert_eq!(&bytes[..4], b"EFMS");
}
