//! Table-driven CRC-32 (IEEE 802.3 polynomial), shared between the
//! checkpoint file format (EFCK) and the cluster data plane's per-frame
//! checksums.
//!
//! The table is built at compile time. Checkpoints run to megabytes and
//! are checksummed once per write *and* read, and every data-plane frame
//! header is checksummed on both send and receive, so the 8× win over a
//! bitwise loop is worth 1 KB of table.

/// Byte-at-a-time lookup table for the reflected IEEE 802.3 polynomial,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// final (bit-inverted) checksum with [`Crc32::finish`].
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh checksum state (initial value `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC32_TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The final checksum (inverted per the IEEE convention). The state is
    /// not consumed; further updates continue from the pre-inversion value.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot convenience: the CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.finish(), crc32(b"hello world"));
    }

    #[test]
    fn distinguishes_single_bit_flip() {
        let a = crc32(&[0x00, 0x01, 0x02, 0x03]);
        let b = crc32(&[0x00, 0x01, 0x02, 0x07]);
        assert_ne!(a, b);
    }
}
