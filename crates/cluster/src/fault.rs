//! Deterministic fault injection for the simulated cluster.
//!
//! Real MPI deployments of the paper's Algorithm 2 lose nodes: hardware
//! dies mid-iteration, links drop or duplicate packets, and stragglers
//! stall collectives. The simulated fabric is too reliable to exercise any
//! of the recovery machinery, so this module injects those failures *on
//! purpose* — deterministically, from a seeded [`FaultPlan`] — making every
//! chaos run exactly reproducible.
//!
//! A plan is a list of [`FaultSpec`]s. Point faults (crash, drop,
//! duplicate, delay, flaky send) fire **at most once per plan instance**,
//! even across supervised restarts: the [`FaultInjector`] carries the
//! fired-latches, and the supervisor reuses one injector for the whole
//! recovery session, so a node that "crashed" stays healthy after the
//! restart — the same model as a replaced physical node. Stragglers are
//! persistent by design.
//!
//! Fault addressing:
//!
//! * crashes fire at *fault points* — labelled `(phase, iteration)` hooks
//!   the engine calls at every phase boundary (see
//!   [`NodeCtx::fault_point`](crate::NodeCtx::fault_point));
//! * send faults address the `nth` send a rank performs (0-based, counting
//!   every point-to-point send, including those inside collectives).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// The rank fails at the given fault point, as if the process died.
    /// Fires when `fault_point(phase, iteration)` matches.
    Crash {
        /// Rank that crashes.
        rank: usize,
        /// Fault-point label (e.g. `"iteration"`, `"communicate"`).
        phase: String,
        /// Iteration index the crash fires at.
        iteration: u64,
    },
    /// The rank's `nth` send vanishes in the fabric: the sender believes it
    /// succeeded, the receiver never sees it (detected downstream by the
    /// sequence-gap check or a receive deadline).
    DropSend {
        /// Sending rank.
        rank: usize,
        /// 0-based send index on that rank.
        nth: u64,
    },
    /// The rank's `nth` send is delivered twice (the duplicate is discarded
    /// by the receiver's sequence check).
    DuplicateSend {
        /// Sending rank.
        rank: usize,
        /// 0-based send index on that rank.
        nth: u64,
    },
    /// The rank's `nth` send is delayed by `millis` before delivery.
    DelaySend {
        /// Sending rank.
        rank: usize,
        /// 0-based send index on that rank.
        nth: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
    /// The rank's `nth` send fails transiently `failures` times before
    /// succeeding (exercises the send retry/backoff path; if `failures`
    /// exceeds the retry budget the send surfaces
    /// [`ClusterError::SendFailed`](crate::ClusterError::SendFailed)).
    FlakySend {
        /// Sending rank.
        rank: usize,
        /// 0-based send index on that rank.
        nth: u64,
        /// Consecutive attempts that fail before one succeeds.
        failures: u32,
    },
    /// The rank sleeps `millis` at every fault point — a persistent slow
    /// node stretching every collective it participates in.
    Straggler {
        /// Straggling rank.
        rank: usize,
        /// Sleep per fault point in milliseconds.
        millis: u64,
    },
    /// The rank dies *silently* at the given fault point: unlike
    /// [`FaultSpec::Crash`], the death is not propagated through the abort
    /// machinery — the barrier is not poisoned and no abort packets are
    /// sent — so the heartbeat detector (not error propagation) must notice
    /// the loss. Fires when `fault_point(phase, iteration)` matches.
    KillRank {
        /// Rank that is killed.
        rank: usize,
        /// Fault-point label (e.g. `"iteration"`, `"communicate"`).
        phase: String,
        /// Iteration index the kill fires at.
        iteration: u64,
    },
}

/// A seeded, deterministic set of faults to inject into a cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed identifying the plan (used by [`FaultPlan::scatter`] and
    /// recorded so chaos runs are reproducible from logs).
    pub seed: u64,
    /// The faults, in no particular order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Adds a crash at `(phase, iteration)` on `rank`.
    pub fn crash(mut self, rank: usize, phase: &str, iteration: u64) -> Self {
        self.faults.push(FaultSpec::Crash { rank, phase: phase.to_string(), iteration });
        self
    }

    /// Adds a dropped send.
    pub fn drop_send(mut self, rank: usize, nth: u64) -> Self {
        self.faults.push(FaultSpec::DropSend { rank, nth });
        self
    }

    /// Adds a duplicated send.
    pub fn duplicate_send(mut self, rank: usize, nth: u64) -> Self {
        self.faults.push(FaultSpec::DuplicateSend { rank, nth });
        self
    }

    /// Adds a delayed send.
    pub fn delay_send(mut self, rank: usize, nth: u64, millis: u64) -> Self {
        self.faults.push(FaultSpec::DelaySend { rank, nth, millis });
        self
    }

    /// Adds a transiently failing send.
    pub fn flaky_send(mut self, rank: usize, nth: u64, failures: u32) -> Self {
        self.faults.push(FaultSpec::FlakySend { rank, nth, failures });
        self
    }

    /// Marks a rank as a persistent straggler.
    pub fn straggler(mut self, rank: usize, millis: u64) -> Self {
        self.faults.push(FaultSpec::Straggler { rank, millis });
        self
    }

    /// Adds a silent kill at `(phase, iteration)` on `rank` (no abort
    /// propagation — only heartbeat detection notices).
    pub fn kill_rank(mut self, rank: usize, phase: &str, iteration: u64) -> Self {
        self.faults.push(FaultSpec::KillRank { rank, phase: phase.to_string(), iteration });
        self
    }

    /// Generates `count` pseudo-random faults over `nodes` ranks from the
    /// plan seed (SplitMix64) — the soak-test workhorse: same seed, same
    /// plan, forever.
    pub fn scatter(seed: u64, nodes: usize, count: usize) -> Self {
        let mut plan = FaultPlan::new(seed);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || splitmix64(&mut state);
        const PHASES: [&str; 6] =
            ["iteration", "generate", "dedup", "rank", "communicate", "merge"];
        for _ in 0..count {
            let rank = (next() % nodes.max(1) as u64) as usize;
            match next() % 5 {
                0 => {
                    let phase = PHASES[(next() % PHASES.len() as u64) as usize];
                    plan = plan.crash(rank, phase, next() % 6);
                }
                1 => plan = plan.drop_send(rank, next() % 16),
                2 => plan = plan.duplicate_send(rank, next() % 16),
                3 => plan = plan.delay_send(rank, next() % 16, 1 + next() % 20),
                _ => plan = plan.flaky_send(rank, next() % 16, 1 + (next() % 3) as u32),
            }
        }
        plan
    }

    /// Parses the CLI spec grammar: `;`-separated clauses of
    ///
    /// ```text
    /// seed=N
    /// crash@RANK:phase=PHASE,iter=K
    /// drop@RANK:nth=N
    /// dup@RANK:nth=N
    /// delay@RANK:nth=N,ms=M
    /// flaky@RANK:nth=N,fails=F
    /// straggle@RANK:ms=M
    /// ```
    ///
    /// e.g. `seed=42;crash@1:phase=communicate,iter=3;drop@0:nth=5`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed.parse().map_err(|_| format!("bad seed in {clause:?}"))?;
                continue;
            }
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("clause {clause:?} is not KIND@RANK:ARGS"))?;
            let (rank_s, args_s) = match rest.split_once(':') {
                Some((r, a)) => (r, a),
                None => (rest, ""),
            };
            let rank: usize = rank_s.parse().map_err(|_| format!("bad rank in {clause:?}"))?;
            let mut args = std::collections::HashMap::new();
            for kv in args_s.split(',').map(str::trim).filter(|a| !a.is_empty()) {
                let (k, v) =
                    kv.split_once('=').ok_or_else(|| format!("bad arg {kv:?} in {clause:?}"))?;
                args.insert(k.trim(), v.trim());
            }
            let num = |key: &str| -> Result<u64, String> {
                args.get(key)
                    .ok_or_else(|| format!("{clause:?} is missing {key}="))?
                    .parse()
                    .map_err(|_| format!("bad {key}= in {clause:?}"))
            };
            plan.faults.push(match kind {
                "crash" => FaultSpec::Crash {
                    rank,
                    phase: args.get("phase").unwrap_or(&"iteration").to_string(),
                    iteration: num("iter")?,
                },
                "drop" => FaultSpec::DropSend { rank, nth: num("nth")? },
                "dup" => FaultSpec::DuplicateSend { rank, nth: num("nth")? },
                "delay" => FaultSpec::DelaySend { rank, nth: num("nth")?, millis: num("ms")? },
                "flaky" => {
                    FaultSpec::FlakySend { rank, nth: num("nth")?, failures: num("fails")? as u32 }
                }
                "straggle" => FaultSpec::Straggler { rank, millis: num("ms")? },
                "kill" => FaultSpec::KillRank {
                    rank,
                    phase: args.get("phase").unwrap_or(&"iteration").to_string(),
                    iteration: num("iter")?,
                },
                other => return Err(format!("unknown fault kind {other:?} in {clause:?}")),
            });
        }
        Ok(plan)
    }
}

/// One SplitMix64 step: advances `state` and returns the next pseudo-random
/// word. Shared by [`FaultPlan::scatter`] and the seeded send-retry jitter
/// ([`backoff_with_jitter`](crate::backoff_with_jitter)) so every derived
/// random stream is reproducible from the plan seed alone.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::Crash { rank, phase, iteration } => {
                write!(f, "crash@{rank}:phase={phase},iter={iteration}")
            }
            FaultSpec::DropSend { rank, nth } => write!(f, "drop@{rank}:nth={nth}"),
            FaultSpec::DuplicateSend { rank, nth } => write!(f, "dup@{rank}:nth={nth}"),
            FaultSpec::DelaySend { rank, nth, millis } => {
                write!(f, "delay@{rank}:nth={nth},ms={millis}")
            }
            FaultSpec::FlakySend { rank, nth, failures } => {
                write!(f, "flaky@{rank}:nth={nth},fails={failures}")
            }
            FaultSpec::Straggler { rank, millis } => write!(f, "straggle@{rank}:ms={millis}"),
            FaultSpec::KillRank { rank, phase, iteration } => {
                write!(f, "kill@{rank}:phase={phase},iter={iteration}")
            }
        }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for spec in &self.faults {
            write!(f, ";{spec}")?;
        }
        Ok(())
    }
}

/// What the fabric does with one send *attempt*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver normally.
    Deliver,
    /// Pretend success, never deliver.
    Drop,
    /// Deliver twice (same sequence number).
    Duplicate,
    /// Sleep this many milliseconds, then deliver.
    DelayMs(u64),
    /// Fail this attempt transiently (the caller should back off and retry).
    Transient,
}

/// Shared, restart-surviving runtime state of a [`FaultPlan`].
///
/// One injector instance is threaded (via `Arc` in
/// [`ClusterConfig`](crate::ClusterConfig)) through every rank of a run —
/// and, under supervision, through every *restart* of the run — so each
/// point fault fires exactly once per recovery session.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// One latch per fault; point faults set it when they fire.
    fired: Vec<AtomicBool>,
    /// Remaining failures per fault (used by `FlakySend` only).
    flaky_left: Vec<AtomicU32>,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        let flaky_left = plan
            .faults
            .iter()
            .map(|f| match f {
                FaultSpec::FlakySend { failures, .. } => AtomicU32::new(*failures),
                _ => AtomicU32::new(0),
            })
            .collect();
        FaultInjector { plan, fired, flaky_left }
    }

    /// The plan the injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether every one-shot fault has already fired.
    pub fn exhausted(&self) -> bool {
        self.plan.faults.iter().zip(&self.fired).all(|(f, fired)| {
            matches!(f, FaultSpec::Straggler { .. }) || fired.load(Ordering::Relaxed)
        })
    }

    /// Claims a not-yet-fired fault slot; returns whether this caller won.
    fn claim(&self, idx: usize) -> bool {
        !self.fired[idx].swap(true, Ordering::Relaxed)
    }

    /// If a crash is planted at this rank/phase/iteration and has not fired
    /// yet, fires it and returns its description.
    pub fn crash_at(&self, rank: usize, phase: &str, iteration: u64) -> Option<String> {
        for (i, f) in self.plan.faults.iter().enumerate() {
            if let FaultSpec::Crash { rank: r, phase: p, iteration: k } = f {
                if *r == rank && p == phase && *k == iteration && self.claim(i) {
                    return Some(format!("injected crash at {phase}[{iteration}]"));
                }
            }
        }
        None
    }

    /// If a silent kill is planted at this rank/phase/iteration and has not
    /// fired yet, fires it and returns its description.
    pub fn kill_at(&self, rank: usize, phase: &str, iteration: u64) -> Option<String> {
        for (i, f) in self.plan.faults.iter().enumerate() {
            if let FaultSpec::KillRank { rank: r, phase: p, iteration: k } = f {
                if *r == rank && p == phase && *k == iteration && self.claim(i) {
                    return Some(format!("injected kill at {phase}[{iteration}]"));
                }
            }
        }
        None
    }

    /// Milliseconds this rank must straggle at every fault point.
    pub fn straggle_millis(&self, rank: usize) -> u64 {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::Straggler { rank: r, millis } if *r == rank => Some(*millis),
                _ => None,
            })
            .sum()
    }

    /// Decides the fate of one attempt of the `nth` send on `rank`.
    pub fn on_send_attempt(&self, rank: usize, nth: u64) -> SendFate {
        for (i, f) in self.plan.faults.iter().enumerate() {
            match f {
                FaultSpec::DropSend { rank: r, nth: n }
                    if *r == rank && *n == nth && self.claim(i) =>
                {
                    return SendFate::Drop;
                }
                FaultSpec::DuplicateSend { rank: r, nth: n }
                    if *r == rank && *n == nth && self.claim(i) =>
                {
                    return SendFate::Duplicate;
                }
                FaultSpec::DelaySend { rank: r, nth: n, millis }
                    if *r == rank && *n == nth && self.claim(i) =>
                {
                    return SendFate::DelayMs(*millis);
                }
                FaultSpec::FlakySend { rank: r, nth: n, .. } if *r == rank && *n == nth => {
                    if self.fired[i].load(Ordering::Relaxed) {
                        continue;
                    }
                    let left = &self.flaky_left[i];
                    let mut cur = left.load(Ordering::Relaxed);
                    loop {
                        if cur == 0 {
                            self.fired[i].store(true, Ordering::Relaxed);
                            break;
                        }
                        match left.compare_exchange_weak(
                            cur,
                            cur - 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => return SendFate::Transient,
                            Err(seen) => cur = seen,
                        }
                    }
                }
                _ => {}
            }
        }
        SendFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        let plan = FaultPlan::new(42)
            .crash(1, "communicate", 3)
            .drop_send(0, 5)
            .duplicate_send(2, 1)
            .delay_send(1, 4, 50)
            .flaky_send(1, 2, 3)
            .straggler(3, 10)
            .kill_rank(2, "merge", 4);
        let spec = plan.to_string();
        let back = FaultPlan::parse(&spec).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("kaboom@1:nth=2").is_err());
        assert!(FaultPlan::parse("crash@x:iter=1").is_err());
        assert!(FaultPlan::parse("drop@0").is_err()); // missing nth
        assert!(FaultPlan::parse("seed=notanumber").is_err());
    }

    #[test]
    fn crash_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(0).crash(1, "iteration", 2));
        assert!(inj.crash_at(0, "iteration", 2).is_none(), "wrong rank");
        assert!(inj.crash_at(1, "merge", 2).is_none(), "wrong phase");
        assert!(inj.crash_at(1, "iteration", 1).is_none(), "wrong iteration");
        assert!(inj.crash_at(1, "iteration", 2).is_some());
        assert!(inj.crash_at(1, "iteration", 2).is_none(), "one-shot latch");
        assert!(inj.exhausted());
    }

    #[test]
    fn kill_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(0).kill_rank(2, "rank", 1));
        assert!(inj.kill_at(1, "rank", 1).is_none(), "wrong rank");
        assert!(inj.kill_at(2, "merge", 1).is_none(), "wrong phase");
        assert!(inj.kill_at(2, "rank", 0).is_none(), "wrong iteration");
        assert!(inj.kill_at(2, "rank", 1).is_some());
        assert!(inj.kill_at(2, "rank", 1).is_none(), "one-shot latch");
        assert!(inj.exhausted());
    }

    #[test]
    fn flaky_send_fails_then_succeeds() {
        let inj = FaultInjector::new(FaultPlan::new(0).flaky_send(0, 3, 2));
        assert_eq!(inj.on_send_attempt(0, 2), SendFate::Deliver, "different nth");
        assert_eq!(inj.on_send_attempt(0, 3), SendFate::Transient);
        assert_eq!(inj.on_send_attempt(0, 3), SendFate::Transient);
        assert_eq!(inj.on_send_attempt(0, 3), SendFate::Deliver, "failures exhausted");
        assert_eq!(inj.on_send_attempt(0, 3), SendFate::Deliver);
    }

    #[test]
    fn scatter_is_deterministic() {
        let a = FaultPlan::scatter(7, 4, 6);
        let b = FaultPlan::scatter(7, 4, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        let c = FaultPlan::scatter(8, 4, 6);
        assert_ne!(a, c, "different seeds should give different plans");
    }
}
