//! # efm-cluster — a simulated distributed-memory cluster
//!
//! The paper's combinatorial parallel Nullspace Algorithm (its Algorithm 2)
//! is a bulk-synchronous message-passing program: every compute node holds a
//! full copy of the current mode matrix, processes its stripe of the
//! pos×neg candidate grid, and exchanges survivors with all other nodes at
//! the end of each iteration. The authors ran it over MPI on an SGI Altix
//! cluster and an IBM Blue Gene/P.
//!
//! We do not have those machines, so this crate provides the faithful
//! stand-in the reproduction runs on (see DESIGN.md §4):
//!
//! * **ranks as OS threads** with private state — nothing is shared unless
//!   it travels through a message;
//! * **typed FIFO channels** (crossbeam) as the interconnect, with
//!   [`NodeCtx::allgather`], [`NodeCtx::barrier`], and point-to-point
//!   [`NodeCtx::send`]/[`NodeCtx::recv`];
//! * **per-node memory meters** with a configurable capacity so the paper's
//!   out-of-memory failure mode ("the computation had to be abandoned at
//!   the 59th iteration") is reproducible;
//! * **per-node phase clocks and work counters**, which the table harnesses
//!   use to report the paper's `gen cand / rank test / communicate / merge`
//!   rows even on a single physical core.
//!
//! ## Abort safety
//!
//! A rank that fails — memory cap, protocol error, or panic — must not
//! strand its peers inside a collective (the MPI analogue: the job
//! scheduler kills every rank when one aborts). The runtime therefore
//! carries a **control plane** next to the data fabric:
//!
//! * the barrier is *poisonable*: the first failure wakes every current and
//!   future waiter with an error instead of blocking forever;
//! * an abort packet is broadcast to every mailbox, so ranks blocked in
//!   [`NodeCtx::recv`] (and every collective built on it) wake up;
//! * every communication primitive returns `Result`, surfacing
//!   [`ClusterError::Aborted`] with the originating rank;
//! * [`run_cluster`] returns the *originating* error — peers' secondary
//!   `Aborted` errors are discarded.

//!
//! ## Degraded-mode failover
//!
//! With [`ClusterConfig::with_failover`] enabled the runtime additionally
//! carries a **liveness layer**: every rank gets a heartbeat thread that
//! both beats on the rank's behalf and watches its peers' last-seen
//! stamps. A rank that dies *silently* (the [`fault::FaultSpec::KillRank`]
//! fault, modelling a node that vanishes without an MPI error) stops
//! beating; the first peer detector to notice declares it dead, advances
//! the **membership epoch**, and converts the loss into a typed
//! [`ClusterError::RankLost`] that wakes every survivor at the current
//! boundary. Data packets are stamped with the epoch they were sent under
//! and receivers drop stale-epoch traffic, so in-flight frames from the
//! old view cannot leak into the new one. The supervisor (crates/efm)
//! then re-enters the run from the last checkpoint with N−1 ranks instead
//! of replaying it — see DESIGN.md §14.

#![warn(missing_docs)]

pub mod crc;
pub mod fault;

pub use fault::{FaultInjector, FaultPlan, FaultSpec, SendFate};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Deadlines and retry budgets for the communication primitives.
///
/// Every wait in the runtime is bounded: a silent peer death can stall a
/// rank for at most the configured deadline before it surfaces a typed
/// [`ClusterError::Timeout`] instead of hanging the run (previously only a
/// CI-level `timeout 900` caught such hangs). The defaults are generous —
/// 300 s — so legitimate long collectives never trip them; chaos tests
/// tighten them to seconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTimeouts {
    /// Deadline for a blocking [`NodeCtx::recv`] (and every collective
    /// built on it).
    pub recv: Duration,
    /// Deadline for [`NodeCtx::barrier`].
    pub barrier: Duration,
    /// Retry attempts for a transiently failing send before giving up with
    /// [`ClusterError::SendFailed`].
    pub send_retries: u32,
    /// Base backoff between send retries; doubles per attempt
    /// (exponential backoff).
    pub send_retry_base: Duration,
}

impl Default for ClusterTimeouts {
    fn default() -> Self {
        ClusterTimeouts {
            recv: Duration::from_secs(300),
            barrier: Duration::from_secs(300),
            send_retries: 8,
            send_retry_base: Duration::from_millis(1),
        }
    }
}

impl ClusterTimeouts {
    /// A uniform deadline for both `recv` and `barrier`.
    pub fn uniform(deadline: Duration) -> Self {
        ClusterTimeouts { recv: deadline, barrier: deadline, ..Default::default() }
    }
}

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes (ranks).
    pub nodes: usize,
    /// Optional per-node memory capacity in bytes. Accounted allocations
    /// beyond this abort the node with [`ClusterError::MemoryExceeded`].
    pub memory_limit: Option<u64>,
    /// Deadlines for blocking primitives and the send retry budget.
    pub timeouts: ClusterTimeouts,
    /// Optional fault injector. Shared (`Arc`) so a supervisor can reuse
    /// one injector across restarts — point faults then fire exactly once
    /// per recovery session, not once per attempt.
    pub injector: Option<Arc<FaultInjector>>,
    /// Enables the heartbeat/liveness layer: a silently dead non-zero rank
    /// is detected by its peers and surfaced as [`ClusterError::RankLost`]
    /// (the supervisor's cue for in-place failover) instead of stalling
    /// the collective until a deadline.
    pub failover: bool,
    /// Heartbeat period for the liveness layer (default 10 ms). The
    /// staleness window is `20 × heartbeat`, floored at 200 ms so OS
    /// scheduler hiccups on loaded CI runners cannot fake a death.
    pub heartbeat: Duration,
}

impl ClusterConfig {
    /// A cluster of `nodes` ranks with unlimited memory, default deadlines,
    /// and no injected faults.
    pub fn new(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            memory_limit: None,
            timeouts: ClusterTimeouts::default(),
            injector: None,
            failover: false,
            heartbeat: Duration::from_millis(10),
        }
    }

    /// Sets the per-node memory capacity.
    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Sets the communication deadlines and retry budget.
    pub fn with_timeouts(mut self, timeouts: ClusterTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Installs a fault plan (a fresh injector is built from it).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(Arc::new(FaultInjector::new(plan)));
        self
    }

    /// Installs an existing (possibly partially fired) injector.
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Enables or disables the heartbeat/liveness layer (degraded-mode
    /// failover). Off by default.
    pub fn with_failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// Sets the heartbeat period for the liveness layer.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }
}

/// Errors surfaced by a cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node exceeded its memory capacity.
    MemoryExceeded {
        /// Rank that failed.
        rank: usize,
        /// Bytes the failing allocation requested.
        requested: u64,
        /// Bytes already accounted on that node.
        in_use: u64,
        /// The configured capacity.
        limit: u64,
    },
    /// A node panicked; the message is the panic payload when printable.
    NodePanicked {
        /// Rank that panicked.
        rank: usize,
        /// Panic message.
        message: String,
    },
    /// A communication primitive was used inconsistently.
    Protocol(String),
    /// A blocking primitive exceeded its deadline — the failure-detector
    /// signal for a dead or wedged peer (see [`ClusterTimeouts`]).
    Timeout {
        /// Rank whose wait expired.
        rank: usize,
        /// What was being waited on (e.g. `"recv from 2"`, `"barrier"`).
        phase: String,
    },
    /// A planted fault from a [`FaultPlan`] killed this rank.
    InjectedCrash {
        /// Rank that crashed.
        rank: usize,
        /// Fault-point description (phase and iteration).
        at: String,
    },
    /// A planted [`fault::FaultSpec::KillRank`] silently terminated this
    /// rank: unlike [`ClusterError::InjectedCrash`] the death is *not*
    /// propagated through the abort machinery — peers must notice via the
    /// heartbeat detector. This variant only surfaces directly when
    /// failover is disabled (or the victim is rank 0), where it takes the
    /// ordinary retryable-restart path.
    RankKilled {
        /// Rank that was killed.
        rank: usize,
        /// Fault-point description (phase and iteration).
        at: String,
    },
    /// The heartbeat detector declared a rank dead and advanced the
    /// membership epoch. The supervisor treats this as its failover cue:
    /// re-enter the run at the last checkpoint with the survivors.
    RankLost {
        /// Rank declared dead.
        rank: usize,
        /// Membership epoch after the view change.
        epoch: u64,
    },
    /// A data-plane frame failed its CRC-32 header checksum — corruption
    /// in the fabric rather than loss or duplication.
    CorruptFrame {
        /// Sending rank stamped on the frame.
        src: usize,
        /// Receiving rank that detected the corruption.
        dst: usize,
        /// Sequence number carried by the frame (0 for control frames).
        seq: u64,
    },
    /// A send kept failing transiently past the retry budget.
    SendFailed {
        /// Sending rank.
        rank: usize,
        /// Destination rank.
        dst: usize,
        /// Attempts made (including retries).
        attempts: u32,
    },
    /// A sequence gap was observed in the per-sender FIFO stream: at least
    /// one earlier message from `src` was lost in the fabric.
    MessageLost {
        /// Receiving rank that detected the gap.
        rank: usize,
        /// Sender whose stream has the gap.
        src: usize,
        /// Sequence number the receiver expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
    /// The run was aborted by a failure on another rank: a communication
    /// primitive was woken out of its wait instead of blocking forever.
    /// `run_cluster` reports the *originating* error; this variant is what
    /// the surviving ranks' own collectives return on the way out.
    Aborted {
        /// Rank whose failure triggered the abort.
        origin: usize,
        /// Display form of the originating error.
        reason: String,
    },
}

impl ClusterError {
    /// Whether this error is (or propagates) a memory-capacity failure —
    /// the trigger for divide-and-conquer escalation.
    pub fn is_memory_exceeded(&self) -> bool {
        matches!(self, ClusterError::MemoryExceeded { .. })
    }

    /// Whether this error models a transient infrastructure failure — a
    /// crashed, wedged, or unlucky node rather than a broken program — and
    /// a restart of the run can reasonably succeed. Memory exhaustion is
    /// *not* retryable (a restart hits the same wall; it needs
    /// divide-and-conquer escalation), and protocol errors are programming
    /// bugs.
    /// [`ClusterError::RankLost`] is deliberately *not* retryable: it has
    /// its own failover path in the supervisor (re-enter with N−1 ranks),
    /// classified before the retryable check.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClusterError::Timeout { .. }
                | ClusterError::InjectedCrash { .. }
                | ClusterError::RankKilled { .. }
                | ClusterError::CorruptFrame { .. }
                | ClusterError::SendFailed { .. }
                | ClusterError::MessageLost { .. }
                | ClusterError::NodePanicked { .. }
                | ClusterError::Aborted { .. }
        )
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::MemoryExceeded { rank, requested, in_use, limit } => write!(
                f,
                "rank {rank}: memory capacity exceeded (requested {requested} B on top of {in_use} B, limit {limit} B)"
            ),
            ClusterError::NodePanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            ClusterError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClusterError::Timeout { rank, phase } => {
                write!(f, "rank {rank}: deadline exceeded in {phase}")
            }
            ClusterError::InjectedCrash { rank, at } => {
                write!(f, "rank {rank}: {at}")
            }
            ClusterError::RankKilled { rank, at } => {
                write!(f, "rank {rank}: {at} (silent death)")
            }
            ClusterError::RankLost { rank, epoch } => {
                write!(f, "rank {rank} lost (heartbeat stale; membership epoch now {epoch})")
            }
            ClusterError::CorruptFrame { src, dst, seq } => {
                write!(f, "rank {dst}: corrupt frame from rank {src} (seq {seq}) failed its CRC")
            }
            ClusterError::SendFailed { rank, dst, attempts } => {
                write!(f, "rank {rank}: send to rank {dst} failed after {attempts} attempts")
            }
            ClusterError::MessageLost { rank, src, expected, got } => write!(
                f,
                "rank {rank}: message from rank {src} lost (expected seq {expected}, got {got})"
            ),
            ClusterError::Aborted { origin, reason } => {
                write!(f, "aborted by rank {origin}: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-node accounted memory meter.
///
/// Release-safe: an over-free (double free / stale size) cannot wrap the
/// counter. The balance saturates at zero, the meter is marked poisoned,
/// and the next [`MemoryMeter::alloc`]/[`MemoryMeter::realloc`] surfaces a
/// [`ClusterError::Protocol`] instead of silently disabling (or spuriously
/// tripping) the capacity check.
#[derive(Debug)]
pub struct MemoryMeter {
    current: AtomicU64,
    peak: AtomicU64,
    limit: Option<u64>,
    rank: usize,
    poisoned: AtomicBool,
}

impl MemoryMeter {
    fn new(rank: usize, limit: Option<u64>) -> Self {
        MemoryMeter {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            limit,
            rank,
            poisoned: AtomicBool::new(false),
        }
    }

    fn check_poisoned(&self) -> Result<(), ClusterError> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(ClusterError::Protocol(format!(
                "rank {}: memory meter poisoned by an over-free (free exceeded accounted bytes)",
                self.rank
            )));
        }
        Ok(())
    }

    /// Accounts an allocation of `bytes`. Fails when the capacity would be
    /// exceeded (the allocation is then *not* accounted) or when the meter
    /// was poisoned by an earlier over-free.
    pub fn alloc(&self, bytes: u64) -> Result<(), ClusterError> {
        self.check_poisoned()?;
        let prev = self.current.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if let Some(limit) = self.limit {
            if now > limit {
                self.current.fetch_sub(bytes, Ordering::Relaxed);
                return Err(ClusterError::MemoryExceeded {
                    rank: self.rank,
                    requested: bytes,
                    in_use: prev,
                    limit,
                });
            }
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Releases `bytes` previously accounted. Over-freeing saturates the
    /// balance at zero and poisons the meter; the violation is surfaced as
    /// a [`ClusterError::Protocol`] by the next `alloc`/`realloc`.
    pub fn free(&self, bytes: u64) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if cur < bytes {
                        self.poisoned.store(true, Ordering::Relaxed);
                    }
                    return;
                }
                Err(observed) => cur = observed,
            }
        }
    }

    /// Adjusts the accounted size from `old` to `new` in one step.
    pub fn realloc(&self, old: u64, new: u64) -> Result<(), ClusterError> {
        if new >= old {
            self.alloc(new - old)
        } else {
            self.free(old - new);
            self.check_poisoned()
        }
    }

    /// Currently accounted bytes.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Whether an over-free has poisoned this meter.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// One fabric message. Data packets carry a per-(sender→receiver) FIFO
/// sequence number so the receiver can discard duplicated deliveries and
/// detect lost ones (a gap in the stream); control packets (aborts) travel
/// outside the numbered stream. Every packet additionally carries the
/// membership epoch it was sent under (receivers drop stale-epoch data
/// frames after a view change) and a CRC-32 over its header fields, so a
/// frame corrupted in the fabric surfaces as a typed
/// [`ClusterError::CorruptFrame`] instead of being decoded as garbage.
struct Packet {
    from: usize,
    seq: Option<u64>,
    /// Membership epoch at send time; [`CONTROL_EPOCH`] for control frames
    /// (aborts are never stale).
    epoch: u64,
    /// Causal flow id stamped by the sender (see [`efm_obs::next_flow_id`]);
    /// `0` when tracing is disabled. The receiver closes the flow when it
    /// *consumes* the payload, which is what draws the comm arrow between
    /// rank tracks in the merged trace.
    flow: u64,
    /// CRC-32 over `(from, seq, epoch, flow)` — see [`frame_crc`].
    crc: u32,
    payload: Box<dyn Any + Send>,
}

/// Epoch stamp for control-plane frames: never compares less than any real
/// epoch, so aborts survive a view change.
const CONTROL_EPOCH: u64 = u64::MAX;

/// Header checksum of a fabric frame. The payload is a boxed value (never
/// serialized bytes), so the CRC covers the routing header — the part a
/// corrupted/duplicated delivery would garble first.
fn frame_crc(from: usize, seq: Option<u64>, epoch: u64, flow: u64) -> u32 {
    let mut c = crc::Crc32::new();
    c.update(&(from as u64).to_le_bytes());
    c.update(&[seq.is_some() as u8]);
    c.update(&seq.unwrap_or(0).to_le_bytes());
    c.update(&epoch.to_le_bytes());
    c.update(&flow.to_le_bytes());
    c.finish()
}

/// Shared liveness table for one run: per-rank last-beat stamps, exit
/// flags, and the membership epoch. Beats are written by per-rank
/// heartbeat threads (see [`run_cluster`]); detection is a peer noticing a
/// stamp has gone stale while the rank is neither done nor already dead.
struct Membership {
    /// Current membership epoch; advanced by the winning detector on each
    /// declared death.
    epoch: AtomicU64,
    /// Time origin for the beat stamps.
    start: Instant,
    /// Last beat per rank, µs since `start`.
    last_beat: Vec<AtomicU64>,
    /// Rank exited cleanly (or with a propagated error) — exempt from
    /// staleness: silence after a clean exit is not a death.
    done: Vec<AtomicBool>,
    /// Rank died silently (kill fault under failover): its beater stops,
    /// and the stale stamp *is* the detection signal.
    killed: Vec<AtomicBool>,
    /// Rank declared dead by a detector (CAS winner advances the epoch).
    dead: Vec<AtomicBool>,
}

impl Membership {
    fn new(n: usize) -> Self {
        Membership {
            epoch: AtomicU64::new(0),
            start: Instant::now(),
            last_beat: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: (0..n).map(|_| AtomicBool::new(false)).collect(),
            killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn beat(&self, rank: usize) {
        self.last_beat[rank].store(self.now_us(), Ordering::Relaxed);
    }

    fn mark_done(&self, rank: usize) {
        self.done[rank].store(true, Ordering::Release);
    }

    fn mark_killed(&self, rank: usize) {
        self.killed[rank].store(true, Ordering::Release);
    }

    /// Whether the rank's worker has exited (cleanly or killed) — its
    /// heartbeat thread stops on this.
    fn finished(&self, rank: usize) -> bool {
        self.done[rank].load(Ordering::Acquire) || self.killed[rank].load(Ordering::Acquire)
    }

    fn is_killed(&self, rank: usize) -> bool {
        self.killed[rank].load(Ordering::Acquire)
    }

    /// First silently-killed rank, if any (post-join sweep: a kill at the
    /// final phase can let every survivor finish before detection fires).
    fn first_killed(&self) -> Option<usize> {
        (0..self.killed.len()).find(|&r| self.is_killed(r) && !self.dead[r].load(Ordering::Acquire))
    }

    /// Declares `rank` dead; the CAS winner advances the membership epoch
    /// and returns `true` (exactly one view change per death).
    fn declare_dead(&self, rank: usize) -> bool {
        let won = !self.dead[rank].swap(true, Ordering::AcqRel);
        if won {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        won
    }

    /// Scans for a peer whose beat is older than `window` and that is
    /// neither done nor already declared dead.
    fn find_stale(&self, me: usize, window: Duration) -> Option<usize> {
        let now = self.now_us();
        let window_us = window.as_micros() as u64;
        (0..self.last_beat.len()).find(|&peer| {
            peer != me
                && !self.done[peer].load(Ordering::Acquire)
                && !self.dead[peer].load(Ordering::Acquire)
                && now.saturating_sub(self.last_beat[peer].load(Ordering::Relaxed)) > window_us
        })
    }
}

/// Deterministic, seeded jitter for the exponential send-retry backoff.
///
/// Plain exponential backoff re-collides: in a bulk-synchronous program the
/// ranks run in lockstep, so if two ranks hit a transient send failure at
/// the same instant they retry at the same instant too, forever. The
/// jitter spreads attempt `attempt` uniformly over `[0.5, 1.5)` of the
/// capped exponential delay, derived from SplitMix64 over
/// `(seed, rank, nth, attempt)` — the fault-plan seed keeps chaos runs
/// exactly reproducible.
pub fn backoff_with_jitter(
    base: Duration,
    attempt: u32,
    seed: u64,
    rank: usize,
    nth: u64,
) -> Duration {
    // Exponential, capped at 1 s so a large retry budget cannot sleep for
    // minutes (same cap the un-jittered schedule had).
    let exp = base
        .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16))
        .min(Duration::from_secs(1));
    let mut state = seed
        ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ nth.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    let r = fault::splitmix64(&mut state);
    exp / 2 + (exp * ((r % 1024) as u32)) / 1024
}

/// Control-plane marker delivered to every mailbox when a rank aborts; it
/// wakes ranks blocked in `recv` so they can observe the abort flag.
struct AbortPacket;

/// Trace name of the abort flow: a rank-death abort is the view-change
/// edge the failover path pivots on; everything else is a plain abort.
fn abort_flow_name(err: &ClusterError) -> &'static str {
    if matches!(err, ClusterError::RankLost { .. }) { "view change" } else { "abort" }
}

struct Fabric {
    /// `senders[dst]` delivers into `dst`'s mailbox.
    senders: Vec<Sender<Packet>>,
}

/// First-failure latch shared by every rank of a run. The winning failure
/// is recorded once; everything after observes it.
struct AbortState {
    flagged: AtomicBool,
    info: Mutex<Option<(usize, ClusterError)>>,
    /// Causal edge from the triggering failure to every rank that observes
    /// it: `(flow id, flow name)`, set once by the winning trigger. Ranks
    /// close the flow the first time they see the abort (whether through a
    /// control packet, a poisoned barrier, or the flag), so the trace shows
    /// the view change fanning out from the detector to the survivors.
    flow: Mutex<Option<(u64, &'static str)>>,
}

impl AbortState {
    fn new() -> Self {
        AbortState { flagged: AtomicBool::new(false), info: Mutex::new(None), flow: Mutex::new(None) }
    }

    /// Whether an abort has been triggered (fast path, no lock).
    fn is_flagged(&self) -> bool {
        self.flagged.load(Ordering::Acquire)
    }

    /// The abort's causal flow id and name, if tracing recorded one.
    fn flow(&self) -> Option<(u64, &'static str)> {
        *self.flow.lock()
    }

    /// Records the first failure, poisons the barrier, and wakes every
    /// mailbox with an [`AbortPacket`]. Later failures only keep their own
    /// slot result; the latch is first-writer-wins.
    fn trigger(&self, origin: usize, err: ClusterError, barrier: &PoisonBarrier, fabric: &Fabric) {
        if efm_obs::enabled() {
            efm_obs::instant_dyn(format!("abort: {err}"));
        }
        {
            let mut info = self.info.lock();
            if info.is_none() {
                if efm_obs::enabled() {
                    let name = abort_flow_name(&err);
                    let id = efm_obs::next_flow_id();
                    efm_obs::flow_start(name, id);
                    *self.flow.lock() = Some((id, name));
                }
                *info = Some((origin, err));
            }
        }
        self.flagged.store(true, Ordering::Release);
        barrier.poison();
        for dst in 0..fabric.senders.len() {
            // A closed mailbox just means that rank already exited.
            let _ = fabric.senders[dst].send(Packet {
                from: origin,
                seq: None,
                epoch: CONTROL_EPOCH,
                flow: 0,
                crc: frame_crc(origin, None, CONTROL_EPOCH, 0),
                payload: Box::new(AbortPacket),
            });
        }
    }

    /// The secondary error surviving ranks observe.
    fn aborted_error(&self) -> ClusterError {
        match &*self.info.lock() {
            Some((origin, err)) => {
                ClusterError::Aborted { origin: *origin, reason: err.to_string() }
            }
            // The flag is only ever raised after the latch is filled, but
            // stay defensive rather than panicking inside error handling.
            None => ClusterError::Aborted { origin: usize::MAX, reason: "unknown".into() },
        }
    }

    /// The originating failure, if any.
    fn take_origin_error(&self) -> Option<ClusterError> {
        self.info.lock().take().map(|(_, e)| e)
    }
}

/// A counting barrier whose waiters can be released early ("poisoned") by
/// an aborting rank. Poisoning is permanent: current waiters wake with an
/// error and future waiters fail immediately.
struct PoisonBarrier {
    total: usize,
    state: StdMutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
    /// Flow id of the most recent release (0 = untraced). The releasing
    /// rank starts the flow; woken waiters close it, so the trace shows
    /// the release fanning out from the last arriver to every waiter.
    release_flow: u64,
}

/// Why a barrier wait returned early.
enum BarrierFailure {
    Poisoned,
    TimedOut,
}

impl PoisonBarrier {
    fn new(total: usize) -> Self {
        PoisonBarrier {
            total,
            state: StdMutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
                release_flow: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until all ranks arrive, the barrier is poisoned, or the
    /// deadline passes. A timed-out waiter withdraws its arrival so the
    /// round stays consistent for the remaining ranks (its own failure then
    /// aborts the run through the usual propagation).
    fn wait_deadline(&self, timeout: Duration) -> Result<(), BarrierFailure> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().expect("barrier lock");
        if s.poisoned {
            return Err(BarrierFailure::Poisoned);
        }
        s.arrived += 1;
        if s.arrived == self.total {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            // The last arriver releases the round: start the causal flow the
            // woken waiters close. (With one rank there is nobody to wake;
            // the unmatched start would be dropped at export anyway.)
            if efm_obs::enabled() && self.total > 1 {
                let id = efm_obs::next_flow_id();
                efm_obs::flow_start("barrier release", id);
                s.release_flow = id;
            }
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                s.arrived -= 1;
                return Err(BarrierFailure::TimedOut);
            }
            (s, _) = self.cvar.wait_timeout(s, remaining).expect("barrier wait");
        }
        // A round that completed before the poison still counts as passed.
        if s.generation == gen {
            Err(BarrierFailure::Poisoned)
        } else {
            // Woken by a release: close the releaser's flow. The id cannot
            // belong to a later round — the next release needs this rank to
            // arrive again, which it has not.
            efm_obs::flow_end("barrier release", s.release_flow);
            Ok(())
        }
    }

    fn poison(&self) {
        let mut s = self.state.lock().expect("barrier lock");
        s.poisoned = true;
        drop(s);
        self.cvar.notify_all();
    }
}

/// Per-node phase instrumentation: wall-clock per phase plus abstract work
/// counters (used for modeled scaling on machines with fewer physical cores
/// than simulated ranks).
#[derive(Debug, Default)]
pub struct PhaseStats {
    times: Mutex<HashMap<&'static str, Duration>>,
    work: Mutex<HashMap<&'static str, u64>>,
}

impl PhaseStats {
    /// Accumulated wall time per phase.
    pub fn times(&self) -> HashMap<&'static str, Duration> {
        self.times.lock().clone()
    }

    /// Accumulated work units per phase.
    pub fn work(&self) -> HashMap<&'static str, u64> {
        self.work.lock().clone()
    }
}

/// RAII guard accumulating elapsed time into a phase on drop. Also holds
/// an [`efm_obs`] span so every timed phase shows up as a slice on the
/// rank's trace track (inert unless tracing is enabled).
pub struct PhaseTimer<'a> {
    stats: &'a PhaseStats,
    phase: &'static str,
    start: Instant,
    _span: efm_obs::Span,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        *self.stats.times.lock().entry(self.phase).or_default() += elapsed;
    }
}

/// Handle a node's code uses to talk to the rest of the simulated cluster.
pub struct NodeCtx<'a> {
    rank: usize,
    size: usize,
    fabric: &'a Fabric,
    mailbox: Receiver<Packet>,
    /// Out-of-order packets parked until a matching `recv` (sequence
    /// numbers already validated and consumed at mailbox-pull time). Each
    /// entry keeps the sender's flow id so the comm arrow lands where the
    /// payload is consumed, not where it was pulled off the mailbox.
    parked: Mutex<Vec<(usize, u64, Box<dyn Any + Send>)>>,
    barrier: &'a PoisonBarrier,
    abort: &'a AbortState,
    membership: &'a Membership,
    meter: &'a MemoryMeter,
    stats: &'a PhaseStats,
    timeouts: &'a ClusterTimeouts,
    injector: Option<&'a FaultInjector>,
    failover: bool,
    /// Total sends performed by this rank (fault addressing).
    send_count: AtomicU64,
    /// Next sequence number per destination (sender side).
    send_seq: Vec<AtomicU64>,
    /// Next expected sequence number per source (receiver side).
    recv_expect: Vec<AtomicU64>,
    /// Duplicate deliveries discarded by the sequence check.
    dups_dropped: AtomicU64,
    /// Stale-epoch data frames discarded after a view change.
    stale_dropped: AtomicU64,
    /// This rank already closed the run's abort flow (one arrow per rank).
    abort_flow_closed: AtomicBool,
}

impl<'a> NodeCtx<'a> {
    /// This node's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The node's memory meter.
    pub fn memory(&self) -> &MemoryMeter {
        self.meter
    }

    /// Starts a phase timer; elapsed time accumulates on drop.
    pub fn timed(&self, phase: &'static str) -> PhaseTimer<'a> {
        PhaseTimer { stats: self.stats, phase, start: Instant::now(), _span: efm_obs::span(phase) }
    }

    /// Adds abstract work units to a phase counter.
    pub fn add_work(&self, phase: &'static str, units: u64) {
        *self.stats.work.lock().entry(phase).or_default() += units;
    }

    /// Adds already-measured elapsed time to a phase counter — for callers
    /// whose phases interleave at sub-timer granularity (the streaming
    /// generation pipeline runs all its phases per batch and accumulates
    /// durations itself, where one [`NodeCtx::timed`] guard per phase
    /// would misattribute the interleaving).
    pub fn add_time(&self, phase: &'static str, elapsed: Duration) {
        *self.stats.times.lock().entry(phase).or_default() += elapsed;
    }

    /// The secondary error reported after another rank's abort. The first
    /// observation on this rank closes the abort/view-change flow, drawing
    /// the causal arrow from the trigger (a failing rank or the winning
    /// heartbeat detector) to this rank's track.
    fn aborted(&self) -> ClusterError {
        if efm_obs::enabled() && !self.abort_flow_closed.swap(true, Ordering::Relaxed) {
            if let Some((id, name)) = self.abort.flow() {
                efm_obs::flow_end(name, id);
            }
        }
        self.abort.aborted_error()
    }

    /// Blocks until every rank reaches the barrier, until the run is
    /// aborted by a failing rank (the barrier is then poisoned and every
    /// waiter — current and future — returns [`ClusterError::Aborted`]),
    /// or until the default deadline ([`ClusterTimeouts::barrier`]) passes
    /// and [`ClusterError::Timeout`] reports the wedged collective.
    pub fn barrier(&self) -> Result<(), ClusterError> {
        self.barrier_deadline(self.timeouts.barrier)
    }

    /// [`NodeCtx::barrier`] with an explicit deadline.
    pub fn barrier_deadline(&self, timeout: Duration) -> Result<(), ClusterError> {
        let _span = efm_obs::span("barrier wait");
        let start = Instant::now();
        let result = self.barrier.wait_deadline(timeout);
        efm_obs::hist::record("barrier wait us", start.elapsed().as_micros() as u64);
        match result {
            Ok(()) => Ok(()),
            Err(BarrierFailure::Poisoned) => Err(self.aborted()),
            Err(BarrierFailure::TimedOut) => {
                Err(ClusterError::Timeout { rank: self.rank, phase: "barrier".to_string() })
            }
        }
    }

    /// A fault-injection hook: engines call this at phase boundaries with a
    /// label and iteration index. With no injector installed it is a no-op;
    /// otherwise planted stragglers sleep here and planted crashes fire as
    /// [`ClusterError::InjectedCrash`].
    pub fn fault_point(&self, phase: &str, iteration: u64) -> Result<(), ClusterError> {
        let Some(inj) = self.injector else {
            return Ok(());
        };
        let straggle = inj.straggle_millis(self.rank);
        if straggle > 0 {
            // A span (not just an instant) so the critical-path analyzer can
            // attribute the stall to the straggler category by enclosure.
            let _sp = efm_obs::span("straggle");
            if efm_obs::enabled() {
                efm_obs::instant_dyn(format!("fault: straggle {straggle}ms @{phase}"));
            }
            std::thread::sleep(Duration::from_millis(straggle));
        }
        if let Some(at) = inj.crash_at(self.rank, phase, iteration) {
            if efm_obs::enabled() {
                efm_obs::instant_dyn(format!("fault: crash @{at}"));
            }
            return Err(ClusterError::InjectedCrash { rank: self.rank, at });
        }
        if let Some(at) = inj.kill_at(self.rank, phase, iteration) {
            if efm_obs::enabled() {
                efm_obs::instant_dyn(format!("fault: kill @{at}"));
            }
            return Err(ClusterError::RankKilled { rank: self.rank, at });
        }
        Ok(())
    }

    /// Records `bytes` of payload about to travel on this rank's link to
    /// `dst`. The cluster fabric moves boxed values, not serialized bytes,
    /// so senders that know their payload's true size (the engine knows
    /// its candidate buffers') report it here; the per-(src→dst) counters
    /// feed the merged trace and the `comm bytes` total.
    pub fn note_traffic(&self, dst: usize, bytes: u64) {
        if efm_obs::enabled() {
            efm_obs::counter_add_dyn(format!("link {}->{} bytes", self.rank, dst), bytes);
            efm_obs::counter_add("comm bytes", bytes);
        }
    }

    /// Delivers an already-numbered packet into `dst`'s mailbox.
    fn deliver<M: Send + 'static>(&self, dst: usize, seq: u64, msg: M) -> Result<(), ClusterError> {
        let mut flow = 0u64;
        if efm_obs::enabled() {
            efm_obs::counter_add_dyn(format!("link {}->{} msgs", self.rank, dst), 1);
            efm_obs::counter_add("comm msgs", 1);
            // Stamp the frame with a causal flow: started here on the
            // sender's track, closed where the receiver consumes the
            // payload. A duplicated delivery reuses the duplicate's id and
            // the discarded copy simply never closes.
            flow = efm_obs::next_flow_id();
            efm_obs::flow_start_dyn(format!("msg {}->{}", self.rank, dst), flow);
        }
        let epoch = self.membership.epoch();
        self.fabric.senders[dst]
            .send(Packet {
                from: self.rank,
                seq: Some(seq),
                epoch,
                flow,
                crc: frame_crc(self.rank, Some(seq), epoch, flow),
                payload: Box::new(msg),
            })
            .map_err(|_| {
                if self.abort.is_flagged() {
                    self.aborted()
                } else if self.failover && self.membership.is_killed(dst) {
                    // The sender discovered the death before the heartbeat
                    // window elapsed: declare it here and surface the
                    // failover cue immediately.
                    self.membership.declare_dead(dst);
                    ClusterError::RankLost { rank: dst, epoch: self.membership.epoch() }
                } else {
                    ClusterError::Protocol(format!(
                        "rank {}: send to rank {dst} failed (mailbox closed — peer already exited)",
                        self.rank
                    ))
                }
            })
    }

    /// Sends a message to `dst` (FIFO per sender→receiver pair). Fails with
    /// [`ClusterError::Aborted`] when the run is aborting, and with
    /// [`ClusterError::Protocol`] when `dst` has already exited and dropped
    /// its mailbox — senders observe the failure instead of crashing.
    ///
    /// Under fault injection the send may be dropped, duplicated, delayed,
    /// or fail transiently; transient failures are retried with exponential
    /// backoff up to [`ClusterTimeouts::send_retries`] attempts before
    /// surfacing [`ClusterError::SendFailed`].
    pub fn send<M: Clone + Send + 'static>(&self, dst: usize, msg: M) -> Result<(), ClusterError> {
        assert!(dst < self.size, "send to out-of-range rank");
        let nth = self.send_count.fetch_add(1, Ordering::Relaxed);
        let mut attempts: u32 = 0;
        loop {
            if self.abort.is_flagged() {
                return Err(self.aborted());
            }
            attempts += 1;
            let fate = match self.injector {
                Some(inj) => inj.on_send_attempt(self.rank, nth),
                None => SendFate::Deliver,
            };
            match fate {
                SendFate::Transient => {
                    if attempts > self.timeouts.send_retries {
                        return Err(ClusterError::SendFailed { rank: self.rank, dst, attempts });
                    }
                    // Exponential backoff with seeded jitter: lockstep ranks
                    // that failed together must not retry together.
                    let seed = self.injector.map_or(0, |i| i.plan().seed);
                    let pause = backoff_with_jitter(
                        self.timeouts.send_retry_base,
                        attempts,
                        seed,
                        self.rank,
                        nth,
                    );
                    efm_obs::hist::record("send backoff us", pause.as_micros() as u64);
                    std::thread::sleep(pause);
                }
                SendFate::Drop => {
                    // The fabric swallows the message: consume the sequence
                    // number so the receiver can detect the gap.
                    if efm_obs::enabled() {
                        efm_obs::instant_dyn(format!("fault: dropped send to {dst}"));
                    }
                    self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                SendFate::Duplicate => {
                    let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
                    self.deliver(dst, seq, msg.clone())?;
                    return self.deliver(dst, seq, msg);
                }
                SendFate::DelayMs(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
                    return self.deliver(dst, seq, msg);
                }
                SendFate::Deliver => {
                    let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
                    return self.deliver(dst, seq, msg);
                }
            }
        }
    }

    /// Validates a pulled packet's sequence number. Returns `Ok(false)` for
    /// a duplicate (discard silently), `Ok(true)` for an in-order packet,
    /// and [`ClusterError::MessageLost`] on a gap (an earlier message from
    /// this sender was dropped by the fabric).
    fn check_seq(&self, from: usize, seq: u64) -> Result<bool, ClusterError> {
        let expected = self.recv_expect[from].load(Ordering::Relaxed);
        if seq < expected {
            self.dups_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        if seq > expected {
            return Err(ClusterError::MessageLost {
                rank: self.rank,
                src: from,
                expected,
                got: seq,
            });
        }
        self.recv_expect[from].store(expected + 1, Ordering::Relaxed);
        Ok(true)
    }

    /// Duplicate deliveries the sequence check has discarded on this rank.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dups_dropped.load(Ordering::Relaxed)
    }

    /// Stale-epoch data frames discarded on this rank after a view change.
    pub fn stale_frames_dropped(&self) -> u64 {
        self.stale_dropped.load(Ordering::Relaxed)
    }

    /// Receives the next message of type `M` from rank `src` within the
    /// default deadline ([`ClusterTimeouts::recv`]). Messages of other
    /// types or sources are parked, preserving per-sender order. Wakes with
    /// [`ClusterError::Aborted`] when a failing rank aborts the run while
    /// this rank is blocked, and with [`ClusterError::Timeout`] when the
    /// deadline passes — a silent peer death can no longer hang a run.
    pub fn recv<M: Send + 'static>(&self, src: usize) -> Result<M, ClusterError> {
        self.recv_deadline(src, self.timeouts.recv)
    }

    /// [`NodeCtx::recv`] with an explicit deadline.
    pub fn recv_deadline<M: Send + 'static>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<M, ClusterError> {
        // Check parked packets first.
        {
            let mut parked = self.parked.lock();
            if let Some(pos) = parked.iter().position(|(from, _, b)| *from == src && b.is::<M>()) {
                let (from, flow, b) = parked.remove(pos);
                drop(parked);
                self.close_msg_flow(from, flow);
                return Ok(*b.downcast::<M>().unwrap());
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            if self.abort.is_flagged() {
                return Err(self.aborted());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let timeout_err =
                || ClusterError::Timeout { rank: self.rank, phase: format!("recv from {src}") };
            if remaining.is_zero() {
                return Err(timeout_err());
            }
            let packet = match self.mailbox.recv_timeout(remaining) {
                Ok(p) => p,
                Err(RecvTimeoutError::Timeout) => return Err(timeout_err()),
                // All senders gone: only possible when the run is tearing
                // down, which implies an abort is in flight.
                Err(RecvTimeoutError::Disconnected) => return Err(self.aborted()),
            };
            if packet.crc != frame_crc(packet.from, packet.seq, packet.epoch, packet.flow) {
                return Err(ClusterError::CorruptFrame {
                    src: packet.from,
                    dst: self.rank,
                    seq: packet.seq.unwrap_or(0),
                });
            }
            if packet.payload.is::<AbortPacket>() {
                return Err(self.aborted());
            }
            if packet.epoch < self.membership.epoch() {
                // Traffic from a pre-view-change epoch: the sender's view
                // included a rank that is now dead. Consume the sequence
                // number (the frame *was* delivered, merely obsolete) so
                // in-epoch traffic behind it is not mistaken for a gap.
                if let Some(seq) = packet.seq {
                    self.recv_expect[packet.from].fetch_max(seq + 1, Ordering::Relaxed);
                }
                self.stale_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if let Some(seq) = packet.seq {
                if !self.check_seq(packet.from, seq)? {
                    continue; // duplicate delivery, discard
                }
            }
            if packet.from == src && packet.payload.is::<M>() {
                self.close_msg_flow(packet.from, packet.flow);
                return Ok(*packet.payload.downcast::<M>().unwrap());
            }
            self.parked.lock().push((packet.from, packet.flow, packet.payload));
        }
    }

    /// Closes a data-frame flow at its consumption point (the receiver's
    /// matching `recv`), completing the sender-started arrow.
    fn close_msg_flow(&self, from: usize, flow: u64) {
        if flow != 0 && efm_obs::enabled() {
            efm_obs::flow_end_dyn(format!("msg {}->{}", from, self.rank), flow);
        }
    }

    /// All-to-all collective: every rank contributes `local`; returns the
    /// contributions of all ranks indexed by rank. Every rank must call
    /// this the same number of times in the same order.
    pub fn allgather<M: Clone + Send + 'static>(&self, local: M) -> Result<Vec<M>, ClusterError> {
        let _span = efm_obs::span("allgather");
        for dst in 0..self.size {
            if dst != self.rank {
                self.send(dst, local.clone())?;
            }
        }
        let mut out: Vec<Option<M>> = (0..self.size).map(|_| None).collect();
        out[self.rank] = Some(local);
        // The receive loop is the collective's synchronization point: a
        // rank blocks here until every peer has sent, so the span length
        // is the time spent waiting on stragglers.
        let wait = efm_obs::span("barrier wait");
        let wait_start = Instant::now();
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = Some(self.recv::<M>(src)?);
            }
        }
        efm_obs::hist::record("barrier wait us", wait_start.elapsed().as_micros() as u64);
        drop(wait);
        Ok(out.into_iter().map(Option::unwrap).collect())
    }

    /// Streaming all-to-all collective: every rank contributes `local` and
    /// folds the contributions of all ranks **in rank order** with `fold`,
    /// holding at most the accumulator plus one in-flight contribution —
    /// never the full `Vec` of all stripes that [`NodeCtx::allgather`]
    /// materializes. With an order-insensitive `fold` (a sorted merge
    /// keeping the lower rank's copy on equal keys, say) the result is
    /// identical to folding the allgather vector left to right.
    ///
    /// The wire pattern (send to all peers, then receive per source in
    /// rank order) is exactly [`NodeCtx::allgather`]'s, so the two are
    /// interchangeable within a run. Every rank must call collectives in
    /// the same order.
    pub fn allgather_fold<M, A>(
        &self,
        local: M,
        init: A,
        mut fold: impl FnMut(A, usize, M) -> Result<A, ClusterError>,
    ) -> Result<A, ClusterError>
    where
        M: Clone + Send + 'static,
    {
        let _span = efm_obs::span("allgather");
        for dst in 0..self.size {
            if dst != self.rank {
                self.send(dst, local.clone())?;
            }
        }
        // Receive in rank order, folding each contribution as it lands and
        // releasing it before the next is pulled. The wait span covers the
        // straggler synchronization exactly like the materialized variant.
        let wait = efm_obs::span("barrier wait");
        let wait_start = Instant::now();
        let mut local = Some(local);
        let mut acc = init;
        for src in 0..self.size {
            let contribution =
                if src == self.rank { local.take().unwrap() } else { self.recv::<M>(src)? };
            acc = fold(acc, src, contribution)?;
        }
        efm_obs::hist::record("barrier wait us", wait_start.elapsed().as_micros() as u64);
        drop(wait);
        Ok(acc)
    }

    /// Reduction collective: combines every rank's `local` with `op` (the
    /// result is identical on every rank).
    pub fn allreduce<M: Clone + Send + 'static>(
        &self,
        local: M,
        op: impl Fn(M, M) -> M,
    ) -> Result<M, ClusterError> {
        let _span = efm_obs::span("allreduce");
        let all = self.allgather(local)?;
        let mut it = all.into_iter();
        let first = it.next().expect("cluster has at least one rank");
        Ok(it.fold(first, op))
    }

    /// One-to-all broadcast: rank `root` supplies the value (others pass
    /// anything, conventionally `None`); every rank returns the root's
    /// value.
    pub fn broadcast<M: Clone + Send + 'static>(
        &self,
        root: usize,
        local: Option<M>,
    ) -> Result<M, ClusterError> {
        assert!(root < self.size, "broadcast root out of range");
        let _span = efm_obs::span("broadcast");
        if self.rank == root {
            let v = local.expect("root must supply the broadcast value");
            for dst in 0..self.size {
                if dst != self.rank {
                    self.send(dst, v.clone())?;
                }
            }
            Ok(v)
        } else {
            self.recv::<M>(root)
        }
    }

    /// All-to-one gather: returns `Some(values by rank)` on `root`, `None`
    /// elsewhere.
    pub fn gather<M: Clone + Send + 'static>(
        &self,
        root: usize,
        local: M,
    ) -> Result<Option<Vec<M>>, ClusterError> {
        assert!(root < self.size, "gather root out of range");
        let _span = efm_obs::span("gather");
        if self.rank == root {
            let mut out: Vec<Option<M>> = (0..self.size).map(|_| None).collect();
            out[self.rank] = Some(local);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != self.rank {
                    *slot = Some(self.recv::<M>(src)?);
                }
            }
            Ok(Some(out.into_iter().map(Option::unwrap).collect()))
        } else {
            self.send(root, local)?;
            Ok(None)
        }
    }

    /// One-to-all scatter: `root` supplies one value per rank; every rank
    /// returns its slot.
    pub fn scatter<M: Clone + Send + 'static>(
        &self,
        root: usize,
        items: Option<Vec<M>>,
    ) -> Result<M, ClusterError> {
        assert!(root < self.size, "scatter root out of range");
        let _span = efm_obs::span("scatter");
        if self.rank == root {
            let items = items.expect("root must supply the scatter items");
            assert_eq!(items.len(), self.size, "scatter needs one item per rank");
            let mut mine = None;
            for (dst, item) in items.into_iter().enumerate() {
                if dst == self.rank {
                    mine = Some(item);
                } else {
                    self.send(dst, item)?;
                }
            }
            Ok(mine.expect("root keeps its own slot"))
        } else {
            self.recv::<M>(root)
        }
    }
}

/// A node's result together with its instrumentation.
#[derive(Debug, Clone)]
pub struct NodeReport<T> {
    /// The node's rank.
    pub rank: usize,
    /// Value returned by the node body.
    pub value: T,
    /// Wall time accumulated per phase.
    pub phase_times: HashMap<&'static str, Duration>,
    /// Work units accumulated per phase.
    pub phase_work: HashMap<&'static str, u64>,
    /// Peak accounted memory in bytes.
    pub peak_memory: u64,
}

/// Runs `body` on every rank of a simulated cluster and collects reports.
///
/// The first failure (memory exhaustion, protocol error, panic) aborts the
/// whole run *promptly*: the failing rank poisons the barrier and wakes
/// every mailbox, so peers blocked in any collective return
/// [`ClusterError::Aborted`] instead of hanging, the thread scope joins,
/// and the originating error is returned. This mirrors an MPI job killed
/// by one rank's failure.
pub fn run_cluster<T, F>(
    config: &ClusterConfig,
    body: F,
) -> Result<Vec<NodeReport<T>>, ClusterError>
where
    T: Send,
    F: Fn(&NodeCtx) -> Result<T, ClusterError> + Sync,
{
    assert!(config.nodes >= 1, "cluster needs at least one node");
    let n = config.nodes;
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded::<Packet>();
        senders.push(s);
        receivers.push(r);
    }
    let fabric = Fabric { senders };
    let barrier = PoisonBarrier::new(n);
    let abort = AbortState::new();
    let membership = Membership::new(n);
    let meters: Vec<MemoryMeter> =
        (0..n).map(|r| MemoryMeter::new(r, config.memory_limit)).collect();
    let stats: Vec<PhaseStats> = (0..n).map(|_| PhaseStats::default()).collect();
    let results: Vec<Mutex<Option<Result<T, ClusterError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let receivers: Vec<Mutex<Option<Receiver<Packet>>>> =
        receivers.into_iter().map(|r| Mutex::new(Some(r))).collect();

    // Heartbeat staleness window: generous relative to the beat period,
    // floored so OS scheduler hiccups on loaded runners cannot fake a
    // death. Detection latency stays well under every recv/barrier
    // deadline, so the typed RankLost beats any Timeout to the latch.
    let stale_window = config.heartbeat.saturating_mul(20).max(Duration::from_millis(200));

    // Attempt flow: caller thread → every rank thread it spawns. This is
    // the happens-before edge that lets the critical-path analyzer walk
    // from a restarted attempt back through the supervisor to the failure
    // that caused it (supervisor respawns are otherwise invisible gaps).
    let attempt_flow = if efm_obs::enabled() {
        let id = efm_obs::next_flow_id();
        efm_obs::flow_start("attempt", id);
        id
    } else {
        0
    };

    std::thread::scope(|scope| {
        for rank in 0..n {
            let fabric = &fabric;
            let barrier = &barrier;
            let abort = &abort;
            let membership = &membership;
            let meter = &meters[rank];
            let stat = &stats[rank];
            let slot = &results[rank];
            let mailbox = receivers[rank].lock().take().expect("mailbox taken once");
            let body = &body;
            scope.spawn(move || {
                // One trace track per rank (tid == rank): this is what
                // merges a cluster run into a single multi-track trace.
                if efm_obs::enabled() {
                    efm_obs::set_track(rank as u32, &format!("rank {rank}"));
                    efm_obs::flow_end("attempt", attempt_flow);
                }
                // Progress lines from this thread say which rank they
                // belong to (multi-rank runs interleave on stderr).
                if efm_obs::progress::progress_enabled() {
                    efm_obs::progress::set_progress_context(Some(format!("rank {rank}")));
                }
                let ctx = NodeCtx {
                    rank,
                    size: n,
                    fabric,
                    mailbox,
                    parked: Mutex::new(Vec::new()),
                    barrier,
                    abort,
                    membership,
                    meter,
                    stats: stat,
                    timeouts: &config.timeouts,
                    injector: config.injector.as_deref(),
                    failover: config.failover,
                    send_count: AtomicU64::new(0),
                    send_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    recv_expect: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    dups_dropped: AtomicU64::new(0),
                    stale_dropped: AtomicU64::new(0),
                    abort_flow_closed: AtomicBool::new(false),
                };
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                let failure = match &out {
                    Ok(Err(e)) => Some(e.clone()),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        Some(ClusterError::NodePanicked { rank, message })
                    }
                    Ok(Ok(_)) => None,
                };
                match failure {
                    // A silent kill under failover: the rank just stops —
                    // no abort, no barrier poison. Its heartbeat goes
                    // stale and a peer detector declares the death. Rank 0
                    // (the coordinator) is never silently lost: its death
                    // takes the ordinary abort → restart-ladder path.
                    Some(ClusterError::RankKilled { .. })
                        if config.failover && n > 1 && rank != 0 =>
                    {
                        membership.mark_killed(rank);
                        if efm_obs::enabled() {
                            efm_obs::instant_dyn(format!("fault: rank {rank} died silently"));
                        }
                    }
                    Some(err) => {
                        // Secondary Aborted errors never displace the
                        // original failure: the latch is first-writer-wins,
                        // and a rank woken by someone else's abort reports
                        // Aborted here.
                        membership.mark_done(rank);
                        abort.trigger(rank, err, barrier, fabric);
                    }
                    None => membership.mark_done(rank),
                }
                if let Ok(r) = out {
                    *slot.lock() = Some(r);
                }
            });
        }
        // The liveness layer: one beater/detector thread per rank. It
        // beats on the rank's behalf every heartbeat (so a busy compute
        // loop never looks dead) and scans peers for stale stamps. The
        // winning detector advances the membership epoch and triggers the
        // abort machinery with RankLost — barrier poison plus abort
        // packets ARE the view-change wake-up: every survivor blocked in
        // a collective returns at the current boundary, and the
        // supervisor re-enters with the agreed N−1 membership.
        if config.failover && n > 1 {
            for rank in 0..n {
                let fabric = &fabric;
                let barrier = &barrier;
                let abort = &abort;
                let membership = &membership;
                let heartbeat = config.heartbeat;
                scope.spawn(move || loop {
                    if membership.finished(rank) || abort.is_flagged() {
                        return;
                    }
                    membership.beat(rank);
                    if let Some(dead) = membership.find_stale(rank, stale_window) {
                        if membership.declare_dead(dead) {
                            let epoch = membership.epoch();
                            if efm_obs::enabled() {
                                efm_obs::instant_dyn(format!(
                                    "failover: rank {dead} lost, membership epoch {epoch}"
                                ));
                            }
                            abort.trigger(
                                rank,
                                ClusterError::RankLost { rank: dead, epoch },
                                barrier,
                                fabric,
                            );
                        }
                        return;
                    }
                    std::thread::sleep(heartbeat);
                });
            }
        }
    });

    if let Some(err) = abort.take_origin_error() {
        // The caller observes the abort here: one more arrival on its
        // track closes the abort/view-change flow at the exact timestamp
        // the failure reached the supervisor (the export picks the
        // latest arrival as the arrowhead).
        if let Some((id, name)) = abort.flow() {
            efm_obs::flow_end(name, id);
        }
        return Err(err);
    }

    // A kill at the very last phase can let every survivor finish before
    // the heartbeat window elapses: no detector fired, but the dead rank
    // produced no result. Synthesize the view change here so the caller
    // still sees the failover cue rather than an untyped protocol error.
    if config.failover {
        if let Some(dead) = membership.first_killed() {
            membership.declare_dead(dead);
            return Err(ClusterError::RankLost { rank: dead, epoch: membership.epoch() });
        }
    }

    let mut reports = Vec::with_capacity(n);
    for (rank, slot) in results.iter().enumerate() {
        let value = slot
            .lock()
            .take()
            .ok_or_else(|| ClusterError::Protocol(format!("rank {rank} produced no result")))??;
        reports.push(NodeReport {
            rank,
            value,
            phase_times: stats[rank].times(),
            phase_work: stats[rank].work(),
            peak_memory: meters[rank].peak(),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_runs() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            Ok(ctx.rank() * 10)
        })
        .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].value, 0);
    }

    #[test]
    fn allgather_orders_by_rank() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let all = ctx.allgather(ctx.rank() as u64 * 100)?;
            Ok(all)
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_mix() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            let mut sums = Vec::new();
            for round in 0..10u64 {
                let all = ctx.allgather(round * 10 + ctx.rank() as u64)?;
                sums.push(all.iter().sum::<u64>());
            }
            Ok(sums)
        })
        .unwrap();
        let expect: Vec<u64> = (0..10u64).map(|r| 3 * (r * 10) + 3).collect();
        for rep in reports {
            assert_eq!(rep.value, expect);
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let reports = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, String::from("ping"))?;
                ctx.recv::<String>(1)
            } else {
                let m = ctx.recv::<String>(0)?;
                ctx.send(0, format!("{m}-pong"))?;
                Ok(m)
            }
        })
        .unwrap();
        assert_eq!(reports[0].value, "ping-pong");
        assert_eq!(reports[1].value, "ping");
    }

    #[test]
    fn recv_distinguishes_types_and_sources() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            match ctx.rank() {
                0 => {
                    // Receive u32 from 2 first even though 1 may arrive first.
                    let a = ctx.recv::<u32>(2)?;
                    let b = ctx.recv::<u32>(1)?;
                    let s = ctx.recv::<String>(1)?;
                    Ok(format!("{a}-{b}-{s}"))
                }
                1 => {
                    ctx.send(0, 11u32)?;
                    ctx.send(0, String::from("x"))?;
                    Ok(String::new())
                }
                _ => {
                    ctx.send(0, 22u32)?;
                    Ok(String::new())
                }
            }
        })
        .unwrap();
        assert_eq!(reports[0].value, "22-11-x");
    }

    #[test]
    fn allreduce_sums() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            ctx.allreduce(ctx.rank() as u64 + 1, |a, b| a + b)
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, 10);
        }
    }

    #[test]
    fn memory_meter_tracks_peak() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            ctx.memory().alloc(1000)?;
            ctx.memory().alloc(500)?;
            ctx.memory().free(800);
            ctx.memory().alloc(100)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(reports[0].peak_memory, 1500);
    }

    #[test]
    fn memory_limit_aborts_run() {
        let cfg = ClusterConfig::new(2).with_memory_limit(1024);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 1 {
                ctx.memory().alloc(512)?;
                ctx.memory().alloc(1024)?; // exceeds
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::MemoryExceeded { rank, requested, in_use, limit } => {
                assert_eq!(rank, 1);
                assert_eq!(requested, 1024);
                assert_eq!(in_use, 512);
                assert_eq!(limit, 1024);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn over_free_saturates_and_poisons() {
        let meter = MemoryMeter::new(0, Some(1000));
        meter.alloc(100).unwrap();
        meter.free(100);
        meter.free(100); // double free: saturates instead of wrapping
        assert_eq!(meter.current(), 0, "no u64 wrap-around");
        assert!(meter.is_poisoned());
        match meter.alloc(1) {
            Err(ClusterError::Protocol(m)) => assert!(m.contains("over-free"), "{m}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
        match meter.realloc(0, 1) {
            Err(ClusterError::Protocol(_)) => {}
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn realloc_shrink_and_grow() {
        let meter = MemoryMeter::new(0, Some(100));
        meter.alloc(50).unwrap();
        meter.realloc(50, 80).unwrap();
        assert_eq!(meter.current(), 80);
        meter.realloc(80, 20).unwrap();
        assert_eq!(meter.current(), 20);
        assert!(meter.realloc(20, 200).is_err());
        assert_eq!(meter.current(), 20);
    }

    #[test]
    fn phase_timing_and_work() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            {
                let _t = ctx.timed("gen");
                std::thread::sleep(Duration::from_millis(5));
            }
            ctx.add_work("gen", 42);
            ctx.add_work("gen", 8);
            Ok(())
        })
        .unwrap();
        let t = reports[0].phase_times.get("gen").copied().unwrap();
        assert!(t >= Duration::from_millis(4), "recorded {t:?}");
        assert_eq!(reports[0].phase_work.get("gen"), Some(&50));
    }

    #[test]
    fn node_panic_is_reported() {
        let err = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                panic!("boom");
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::NodePanicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn panicking_rank_releases_peers_blocked_in_collectives() {
        // Before abort propagation this deadlocked: the panicking rank
        // exited while its peers waited in allgather's recv forever.
        let err = run_cluster(&ClusterConfig::new(4), |ctx| {
            if ctx.rank() == 2 {
                panic!("mid-collective failure");
            }
            let all = ctx.allgather(ctx.rank())?; // blocks on rank 2
            Ok(all.len())
        })
        .unwrap_err();
        match err {
            ClusterError::NodePanicked { rank: 2, message } => {
                assert!(message.contains("mid-collective"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn asymmetric_memory_abort_releases_barrier_waiters() {
        // Exactly one rank trips its cap; the others are blocked in the
        // barrier and must be woken with the typed originating error.
        let cfg = ClusterConfig::new(3).with_memory_limit(1000);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 1 {
                ctx.memory().alloc(2000)?; // asymmetric: only rank 1 allocates
            }
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::MemoryExceeded { rank: 1, requested: 2000, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn asymmetric_memory_abort_releases_recv_waiters() {
        let cfg = ClusterConfig::new(2).with_memory_limit(100);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.memory().alloc(500)?;
                ctx.send(1, 7u32)?;
            }
            let v = ctx.recv::<u32>(1 - ctx.rank())?; // rank 1 blocks here
            Ok(v)
        })
        .unwrap_err();
        match err {
            ClusterError::MemoryExceeded { rank: 0, requested: 500, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_exited_rank_is_an_error_not_a_panic() {
        // Rank 0 exits immediately; rank 1 keeps sending until the mailbox
        // closes. The send must fail with a typed error (never panic).
        let reports = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                return Ok(0u64);
            }
            let mut sent = 0u64;
            for _ in 0..1_000_000 {
                match ctx.send(0, 1u8) {
                    Ok(()) => sent += 1,
                    Err(ClusterError::Protocol(_)) | Err(ClusterError::Aborted { .. }) => break,
                    Err(other) => panic!("unexpected send error {other:?}"),
                }
                std::thread::yield_now();
            }
            Ok(sent)
        })
        .unwrap();
        assert_eq!(reports[0].value, 0);
    }

    #[test]
    fn aborted_error_names_origin() {
        // A peer woken out of a collective observes Aborted{origin}.
        let observed = Mutex::new(None);
        let cfg = ClusterConfig::new(2).with_memory_limit(10);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 1 {
                ctx.memory().alloc(64)?;
            }
            let r = ctx.barrier();
            if let Err(e) = &r {
                *observed.lock() = Some(e.clone());
            }
            r.map(|_| ())
        })
        .unwrap_err();
        assert!(matches!(err, ClusterError::MemoryExceeded { rank: 1, .. }));
        let seen = observed.lock().take();
        match seen {
            Some(ClusterError::Aborted { origin: 1, reason }) => {
                assert!(reason.contains("memory capacity exceeded"), "{reason}");
            }
            other => panic!("peer saw {other:?}"),
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let v = if ctx.rank() == 2 { Some(String::from("hello")) } else { None };
            ctx.broadcast(2, v)
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, "hello");
        }
    }

    #[test]
    fn gather_collects_on_root() {
        let reports =
            run_cluster(&ClusterConfig::new(3), |ctx| ctx.gather(1, ctx.rank() as u32 * 10))
                .unwrap();
        assert_eq!(reports[0].value, None);
        assert_eq!(reports[1].value, Some(vec![0, 10, 20]));
        assert_eq!(reports[2].value, None);
    }

    #[test]
    fn scatter_distributes_slots() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            let items = if ctx.rank() == 0 { Some(vec![100u64, 200, 300]) } else { None };
            ctx.scatter(0, items)
        })
        .unwrap();
        assert_eq!(reports[0].value, 100);
        assert_eq!(reports[1].value, 200);
        assert_eq!(reports[2].value, 300);
    }

    #[test]
    fn collectives_compose() {
        // scatter → local work → gather → broadcast in one program.
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let items = if ctx.rank() == 0 { Some(vec![1u64, 2, 3, 4]) } else { None };
            let mine = ctx.scatter(0, items)?;
            let squared = mine * mine;
            let gathered = ctx.gather(0, squared)?;
            let total =
                if ctx.rank() == 0 { Some(gathered.unwrap().iter().sum::<u64>()) } else { None };
            ctx.broadcast(0, total)
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, 1 + 4 + 9 + 16);
        }
    }

    #[test]
    fn injected_crash_aborts_run_with_typed_error() {
        let plan = FaultPlan::new(1).crash(1, "iteration", 0);
        let cfg = ClusterConfig::new(3).with_fault_plan(plan);
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            ctx.barrier()?; // peers must be released, not hang
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::InjectedCrash { rank: 1, at } => {
                assert!(at.contains("iteration"), "{at}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injected_crash_fires_once_across_runs_with_shared_injector() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(2).crash(0, "iteration", 0)));
        let cfg = ClusterConfig::new(2).with_injector(Arc::clone(&injector));
        let body = |ctx: &NodeCtx| {
            ctx.fault_point("iteration", 0)?;
            ctx.allgather(ctx.rank())
        };
        assert!(run_cluster(&cfg, body).is_err());
        // Second run with the same injector: the one-shot already fired.
        let reports = run_cluster(&cfg, body).unwrap();
        assert_eq!(reports[0].value, vec![0, 1]);
        assert!(injector.exhausted());
    }

    #[test]
    fn dropped_message_is_detected_not_hung() {
        // Rank 0's first send is swallowed; its second send carries seq 1,
        // so rank 1 observes the gap as MessageLost (fail-fast, no timeout).
        let plan = FaultPlan::new(3).drop_send(0, 0);
        let cfg = ClusterConfig::new(2)
            .with_fault_plan(plan)
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(5)));
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10u32)?; // dropped by the fabric
                ctx.send(1, 20u32)?;
                Ok(0)
            } else {
                let a = ctx.recv::<u32>(0)?;
                let b = ctx.recv::<u32>(0)?;
                Ok(a + b)
            }
        })
        .unwrap_err();
        match err {
            ClusterError::MessageLost { rank: 1, src: 0, expected: 0, got: 1 } => {}
            ClusterError::Timeout { rank: 1, .. } => {} // only one send observed
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropped_final_message_times_out() {
        // The dropped message is the only one: no gap is ever observable, so
        // the recv deadline is the backstop.
        let plan = FaultPlan::new(4).drop_send(0, 0);
        let cfg = ClusterConfig::new(2)
            .with_fault_plan(plan)
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_millis(200)));
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10u32)?;
                Ok(0)
            } else {
                ctx.recv::<u32>(0)
            }
        })
        .unwrap_err();
        match err {
            ClusterError::Timeout { rank: 1, phase } => assert!(phase.contains("recv"), "{phase}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicated_message_is_discarded() {
        let plan = FaultPlan::new(5).duplicate_send(0, 0);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan);
        let observed = Mutex::new(0u64);
        let reports = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10u32)?;
                ctx.send(1, 20u32)?;
                Ok(0)
            } else {
                let a = ctx.recv::<u32>(0)?;
                let b = ctx.recv::<u32>(0)?;
                *observed.lock() = ctx.duplicates_dropped();
                Ok(a + b)
            }
        })
        .unwrap();
        assert_eq!(reports[1].value, 30, "duplicate must not displace the second message");
        assert_eq!(*observed.lock(), 1, "exactly one duplicate discarded");
    }

    #[test]
    fn flaky_send_retries_transparently() {
        let plan = FaultPlan::new(6).flaky_send(0, 0, 3);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan);
        let reports = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7u32)?;
                Ok(0)
            } else {
                ctx.recv::<u32>(0)
            }
        })
        .unwrap();
        assert_eq!(reports[1].value, 7);
    }

    #[test]
    fn flaky_send_past_retry_budget_fails_typed() {
        let plan = FaultPlan::new(7).flaky_send(0, 0, 100);
        let timeouts = ClusterTimeouts { send_retries: 3, ..Default::default() };
        let cfg = ClusterConfig::new(2).with_fault_plan(plan).with_timeouts(timeouts);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7u32)?;
                Ok(0)
            } else {
                ctx.recv::<u32>(0)
            }
        })
        .unwrap_err();
        match err {
            ClusterError::SendFailed { rank: 0, dst: 1, attempts: 4 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn barrier_deadline_surfaces_timeout() {
        // Rank 1 never reaches the barrier within the deadline.
        let cfg = ClusterConfig::new(2)
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_millis(100)));
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 1 {
                std::thread::sleep(Duration::from_millis(500));
            }
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::Timeout { rank: 0, phase } => assert_eq!(phase, "barrier"),
            // The late rank may instead observe the abort in its barrier.
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn straggler_slows_but_does_not_fail() {
        let plan = FaultPlan::new(8).straggler(1, 30);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan);
        let start = Instant::now();
        let reports = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            ctx.allgather(ctx.rank() as u64)
        })
        .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(reports[0].value, vec![0, 1]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_cluster(&ClusterConfig::new(4), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier()?;
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(1);
        for attempt in 1..=8u32 {
            let a = backoff_with_jitter(base, attempt, 42, 3, 7);
            let b = backoff_with_jitter(base, attempt, 42, 3, 7);
            assert_eq!(a, b, "same inputs must give the same delay");
            let exp = base * (1u32 << (attempt - 1));
            assert!(a >= exp / 2, "attempt {attempt}: {a:?} below half the exponential {exp:?}");
            assert!(a < exp * 3 / 2, "attempt {attempt}: {a:?} at or above 1.5x {exp:?}");
        }
    }

    #[test]
    fn jittered_backoff_separates_lockstep_ranks() {
        let base = Duration::from_millis(1);
        // Two ranks retrying the same nth send at the same attempt must not
        // share a delay (for at least one attempt in a short horizon —
        // individual collisions are possible but not across the board).
        let distinct = (1..=8u32).any(|attempt| {
            backoff_with_jitter(base, attempt, 42, 0, 7)
                != backoff_with_jitter(base, attempt, 42, 1, 7)
        });
        assert!(distinct, "ranks 0 and 1 collided on every attempt");
    }

    #[test]
    fn jittered_backoff_still_grows_exponentially() {
        let base = Duration::from_millis(1);
        // Attempt k+2's minimum (0.5 x 4 x 2^(k-1)) strictly exceeds
        // attempt k's maximum (1.5 x 2^(k-1)): the schedule still escalates
        // despite the jitter.
        for attempt in 1..=6u32 {
            let now = backoff_with_jitter(base, attempt, 9, 2, 0);
            let later = backoff_with_jitter(base, attempt + 2, 9, 2, 0);
            assert!(later > now, "attempt {}: {later:?} <= {now:?}", attempt + 2);
        }
    }

    #[test]
    fn corrupt_frame_is_detected_typed() {
        let err = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                // Bypass send(): inject a frame whose CRC does not match
                // its header, as fabric corruption would produce.
                let sent = ctx.fabric.senders[1].send(Packet {
                    from: 0,
                    seq: Some(0),
                    epoch: 0,
                    flow: 0,
                    crc: 0xDEAD_BEEF,
                    payload: Box::new(7u32),
                });
                assert!(sent.is_ok());
                Ok(0)
            } else {
                ctx.recv::<u32>(0)
            }
        })
        .unwrap_err();
        match err {
            ClusterError::CorruptFrame { src: 0, dst: 1, seq: 0 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_epoch_frames_are_dropped_not_delivered() {
        let observed = Mutex::new((0u32, 0u64));
        run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10u32)?; // stamped epoch 0
                ctx.barrier()?; // rank 1 advances the epoch
                ctx.barrier()?;
                ctx.send(1, 20u32)?; // stamped epoch 1
                Ok(())
            } else {
                ctx.barrier()?;
                // Simulate a view change between rank 0's two sends.
                ctx.membership.epoch.fetch_add(1, Ordering::SeqCst);
                ctx.barrier()?;
                let v = ctx.recv::<u32>(0)?;
                *observed.lock() = (v, ctx.stale_frames_dropped());
                Ok(())
            }
        })
        .unwrap();
        let (v, stale) = *observed.lock();
        assert_eq!(v, 20, "the pre-view-change frame must not be delivered");
        assert_eq!(stale, 1, "exactly one stale frame discarded");
    }

    #[test]
    fn killed_rank_is_detected_as_rank_lost() {
        // Rank 1 dies silently mid-run; rank 0 blocks in recv with a long
        // deadline. Only the heartbeat detector can wake it.
        let plan = FaultPlan::new(11).kill_rank(1, "iteration", 0);
        let cfg = ClusterConfig::new(2)
            .with_fault_plan(plan)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(5))
            .with_timeouts(ClusterTimeouts::uniform(Duration::from_secs(30)));
        let start = Instant::now();
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            if ctx.rank() == 0 {
                ctx.recv::<u32>(1)?;
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::RankLost { rank: 1, epoch } => assert!(epoch >= 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "detection must come from the heartbeat window, not the recv deadline"
        );
    }

    #[test]
    fn kill_at_final_phase_synthesizes_rank_lost_after_join() {
        // No collective follows the kill: every survivor finishes before
        // the staleness window elapses, so the post-join sweep must still
        // surface the loss as RankLost (not an untyped protocol error).
        let plan = FaultPlan::new(12).kill_rank(2, "merge", 0);
        let cfg = ClusterConfig::new(3).with_fault_plan(plan).with_failover(true);
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("merge", 0)?;
            Ok(ctx.rank())
        })
        .unwrap_err();
        match err {
            ClusterError::RankLost { rank: 2, epoch: 1 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kill_without_failover_takes_the_abort_path() {
        let plan = FaultPlan::new(13).kill_rank(1, "iteration", 0);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan);
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        match &err {
            ClusterError::RankKilled { rank: 1, at } => {
                assert!(at.contains("iteration"), "{at}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.is_retryable(), "kill without failover restarts");
    }

    #[test]
    fn killed_rank_zero_is_not_silently_lost() {
        // The coordinator's death must go through the restart ladder even
        // with failover on: survivors cannot re-plan without rank 0.
        let plan = FaultPlan::new(14).kill_rank(0, "iteration", 0);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan).with_failover(true);
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::RankKilled { rank: 0, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failover_run_without_faults_is_unperturbed() {
        // The liveness layer must be inert on a healthy run: same results,
        // no stale drops, no spurious deaths.
        let cfg =
            ClusterConfig::new(4).with_failover(true).with_heartbeat(Duration::from_millis(5));
        let reports = run_cluster(&cfg, |ctx| {
            let all = ctx.allgather(ctx.rank() as u64)?;
            ctx.barrier()?;
            Ok(all.iter().sum::<u64>())
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, 6);
        }
    }

    #[test]
    fn sender_to_killed_rank_surfaces_rank_lost() {
        // The survivor discovers the death through a closed mailbox before
        // the heartbeat window elapses; the error must still be the typed
        // failover cue, not a protocol error.
        let plan = FaultPlan::new(15).kill_rank(1, "iteration", 0);
        let cfg = ClusterConfig::new(2).with_fault_plan(plan).with_failover(true);
        let err = run_cluster(&cfg, |ctx| {
            ctx.fault_point("iteration", 0)?;
            if ctx.rank() == 0 {
                // Keep sending until the death is observed one way or the
                // other (mailbox close or heartbeat detection).
                for _ in 0..1_000_000 {
                    ctx.send(1, 1u8)?;
                    std::thread::yield_now();
                }
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::RankLost { rank: 1, .. } => {}
            ClusterError::Aborted { .. } => {} // detector won the race
            other => panic!("unexpected {other:?}"),
        }
    }
}
