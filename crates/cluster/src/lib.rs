//! # efm-cluster — a simulated distributed-memory cluster
//!
//! The paper's combinatorial parallel Nullspace Algorithm (its Algorithm 2)
//! is a bulk-synchronous message-passing program: every compute node holds a
//! full copy of the current mode matrix, processes its stripe of the
//! pos×neg candidate grid, and exchanges survivors with all other nodes at
//! the end of each iteration. The authors ran it over MPI on an SGI Altix
//! cluster and an IBM Blue Gene/P.
//!
//! We do not have those machines, so this crate provides the faithful
//! stand-in the reproduction runs on (see DESIGN.md §4):
//!
//! * **ranks as OS threads** with private state — nothing is shared unless
//!   it travels through a message;
//! * **typed FIFO channels** (crossbeam) as the interconnect, with
//!   [`NodeCtx::allgather`], [`NodeCtx::barrier`], and point-to-point
//!   [`NodeCtx::send`]/[`NodeCtx::recv`];
//! * **per-node memory meters** with a configurable capacity so the paper's
//!   out-of-memory failure mode ("the computation had to be abandoned at
//!   the 59th iteration") is reproducible;
//! * **per-node phase clocks and work counters**, which the table harnesses
//!   use to report the paper's `gen cand / rank test / communicate / merge`
//!   rows even on a single physical core.

#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes (ranks).
    pub nodes: usize,
    /// Optional per-node memory capacity in bytes. Accounted allocations
    /// beyond this abort the node with [`ClusterError::MemoryExceeded`].
    pub memory_limit: Option<u64>,
}

impl ClusterConfig {
    /// A cluster of `nodes` ranks with unlimited memory.
    pub fn new(nodes: usize) -> Self {
        ClusterConfig { nodes, memory_limit: None }
    }

    /// Sets the per-node memory capacity.
    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.memory_limit = Some(bytes);
        self
    }
}

/// Errors surfaced by a cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node exceeded its memory capacity.
    MemoryExceeded {
        /// Rank that failed.
        rank: usize,
        /// Bytes the failing allocation requested.
        requested: u64,
        /// Bytes already accounted on that node.
        in_use: u64,
        /// The configured capacity.
        limit: u64,
    },
    /// A node panicked; the message is the panic payload when printable.
    NodePanicked {
        /// Rank that panicked.
        rank: usize,
        /// Panic message.
        message: String,
    },
    /// A communication primitive was used inconsistently.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::MemoryExceeded { rank, requested, in_use, limit } => write!(
                f,
                "rank {rank}: memory capacity exceeded (requested {requested} B on top of {in_use} B, limit {limit} B)"
            ),
            ClusterError::NodePanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            ClusterError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-node accounted memory meter.
#[derive(Debug)]
pub struct MemoryMeter {
    current: AtomicU64,
    peak: AtomicU64,
    limit: Option<u64>,
    rank: usize,
}

impl MemoryMeter {
    fn new(rank: usize, limit: Option<u64>) -> Self {
        MemoryMeter { current: AtomicU64::new(0), peak: AtomicU64::new(0), limit, rank }
    }

    /// Accounts an allocation of `bytes`. Fails when the capacity would be
    /// exceeded (the allocation is then *not* accounted).
    pub fn alloc(&self, bytes: u64) -> Result<(), ClusterError> {
        let prev = self.current.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if let Some(limit) = self.limit {
            if now > limit {
                self.current.fetch_sub(bytes, Ordering::Relaxed);
                return Err(ClusterError::MemoryExceeded {
                    rank: self.rank,
                    requested: bytes,
                    in_use: prev,
                    limit,
                });
            }
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Releases `bytes` previously accounted.
    pub fn free(&self, bytes: u64) {
        let prev = self.current.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "MemoryMeter::free underflow");
    }

    /// Adjusts the accounted size from `old` to `new` in one step.
    pub fn realloc(&self, old: u64, new: u64) -> Result<(), ClusterError> {
        if new >= old {
            self.alloc(new - old)
        } else {
            self.free(old - new);
            Ok(())
        }
    }

    /// Currently accounted bytes.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

type Packet = (usize, Box<dyn Any + Send>);

struct Fabric {
    /// `senders[dst]` delivers into `dst`'s mailbox.
    senders: Vec<Sender<Packet>>,
}

/// Per-node phase instrumentation: wall-clock per phase plus abstract work
/// counters (used for modeled scaling on machines with fewer physical cores
/// than simulated ranks).
#[derive(Debug, Default)]
pub struct PhaseStats {
    times: Mutex<HashMap<&'static str, Duration>>,
    work: Mutex<HashMap<&'static str, u64>>,
}

impl PhaseStats {
    /// Accumulated wall time per phase.
    pub fn times(&self) -> HashMap<&'static str, Duration> {
        self.times.lock().clone()
    }

    /// Accumulated work units per phase.
    pub fn work(&self) -> HashMap<&'static str, u64> {
        self.work.lock().clone()
    }
}

/// RAII guard accumulating elapsed time into a phase on drop.
pub struct PhaseTimer<'a> {
    stats: &'a PhaseStats,
    phase: &'static str,
    start: Instant,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        *self.stats.times.lock().entry(self.phase).or_default() += elapsed;
    }
}

/// Handle a node's code uses to talk to the rest of the simulated cluster.
pub struct NodeCtx<'a> {
    rank: usize,
    size: usize,
    fabric: &'a Fabric,
    mailbox: Receiver<Packet>,
    /// Out-of-order packets parked until a matching `recv`.
    parked: Mutex<Vec<Packet>>,
    barrier: &'a std::sync::Barrier,
    meter: &'a MemoryMeter,
    stats: &'a PhaseStats,
}

impl<'a> NodeCtx<'a> {
    /// This node's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The node's memory meter.
    pub fn memory(&self) -> &MemoryMeter {
        self.meter
    }

    /// Starts a phase timer; elapsed time accumulates on drop.
    pub fn timed(&self, phase: &'static str) -> PhaseTimer<'a> {
        PhaseTimer { stats: self.stats, phase, start: Instant::now() }
    }

    /// Adds abstract work units to a phase counter.
    pub fn add_work(&self, phase: &'static str, units: u64) {
        *self.stats.work.lock().entry(phase).or_default() += units;
    }

    /// Blocks until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Sends a message to `dst` (FIFO per sender→receiver pair).
    pub fn send<M: Send + 'static>(&self, dst: usize, msg: M) {
        assert!(dst < self.size, "send to out-of-range rank");
        self.fabric.senders[dst].send((self.rank, Box::new(msg))).expect("cluster fabric closed");
    }

    /// Receives the next message of type `M` from rank `src`. Messages of
    /// other types or sources are parked, preserving per-sender order.
    pub fn recv<M: Send + 'static>(&self, src: usize) -> M {
        // Check parked packets first.
        {
            let mut parked = self.parked.lock();
            if let Some(pos) = parked.iter().position(|(from, b)| *from == src && b.is::<M>()) {
                let (_, b) = parked.remove(pos);
                return *b.downcast::<M>().unwrap();
            }
        }
        loop {
            let (from, boxed) = self.mailbox.recv().expect("cluster fabric closed");
            if from == src && boxed.is::<M>() {
                return *boxed.downcast::<M>().unwrap();
            }
            self.parked.lock().push((from, boxed));
        }
    }

    /// All-to-all collective: every rank contributes `local`; returns the
    /// contributions of all ranks indexed by rank. Every rank must call
    /// this the same number of times in the same order.
    pub fn allgather<M: Clone + Send + 'static>(&self, local: M) -> Vec<M> {
        for dst in 0..self.size {
            if dst != self.rank {
                self.send(dst, local.clone());
            }
        }
        let mut out: Vec<Option<M>> = (0..self.size).map(|_| None).collect();
        out[self.rank] = Some(local);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = Some(self.recv::<M>(src));
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Reduction collective: combines every rank's `local` with `op` (the
    /// result is identical on every rank).
    pub fn allreduce<M: Clone + Send + 'static>(&self, local: M, op: impl Fn(M, M) -> M) -> M {
        let all = self.allgather(local);
        let mut it = all.into_iter();
        let first = it.next().expect("cluster has at least one rank");
        it.fold(first, op)
    }

    /// One-to-all broadcast: rank `root` supplies the value (others pass
    /// anything, conventionally `None`); every rank returns the root's
    /// value.
    pub fn broadcast<M: Clone + Send + 'static>(&self, root: usize, local: Option<M>) -> M {
        assert!(root < self.size, "broadcast root out of range");
        if self.rank == root {
            let v = local.expect("root must supply the broadcast value");
            for dst in 0..self.size {
                if dst != self.rank {
                    self.send(dst, v.clone());
                }
            }
            v
        } else {
            self.recv::<M>(root)
        }
    }

    /// All-to-one gather: returns `Some(values by rank)` on `root`, `None`
    /// elsewhere.
    pub fn gather<M: Clone + Send + 'static>(&self, root: usize, local: M) -> Option<Vec<M>> {
        assert!(root < self.size, "gather root out of range");
        if self.rank == root {
            let mut out: Vec<Option<M>> = (0..self.size).map(|_| None).collect();
            out[self.rank] = Some(local);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != self.rank {
                    *slot = Some(self.recv::<M>(src));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, local);
            None
        }
    }

    /// One-to-all scatter: `root` supplies one value per rank; every rank
    /// returns its slot.
    pub fn scatter<M: Clone + Send + 'static>(&self, root: usize, items: Option<Vec<M>>) -> M {
        assert!(root < self.size, "scatter root out of range");
        if self.rank == root {
            let items = items.expect("root must supply the scatter items");
            assert_eq!(items.len(), self.size, "scatter needs one item per rank");
            let mut mine = None;
            for (dst, item) in items.into_iter().enumerate() {
                if dst == self.rank {
                    mine = Some(item);
                } else {
                    self.send(dst, item);
                }
            }
            mine.expect("root keeps its own slot")
        } else {
            self.recv::<M>(root)
        }
    }
}

/// A node's result together with its instrumentation.
#[derive(Debug, Clone)]
pub struct NodeReport<T> {
    /// The node's rank.
    pub rank: usize,
    /// Value returned by the node body.
    pub value: T,
    /// Wall time accumulated per phase.
    pub phase_times: HashMap<&'static str, Duration>,
    /// Work units accumulated per phase.
    pub phase_work: HashMap<&'static str, u64>,
    /// Peak accounted memory in bytes.
    pub peak_memory: u64,
}

/// Runs `body` on every rank of a simulated cluster and collects reports.
///
/// The first error (memory exhaustion, panic) aborts the whole run; other
/// nodes' channel operations unblock because the fabric closes. This mirrors
/// an MPI job killed by one rank's failure.
pub fn run_cluster<T, F>(
    config: &ClusterConfig,
    body: F,
) -> Result<Vec<NodeReport<T>>, ClusterError>
where
    T: Send,
    F: Fn(&NodeCtx) -> Result<T, ClusterError> + Sync,
{
    assert!(config.nodes >= 1, "cluster needs at least one node");
    let n = config.nodes;
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded::<Packet>();
        senders.push(s);
        receivers.push(r);
    }
    let fabric = Fabric { senders };
    let barrier = std::sync::Barrier::new(n);
    let meters: Vec<MemoryMeter> =
        (0..n).map(|r| MemoryMeter::new(r, config.memory_limit)).collect();
    let stats: Vec<PhaseStats> = (0..n).map(|_| PhaseStats::default()).collect();
    let results: Vec<Mutex<Option<Result<T, ClusterError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let receivers: Vec<Mutex<Option<Receiver<Packet>>>> =
        receivers.into_iter().map(|r| Mutex::new(Some(r))).collect();

    let panic_info: Arc<Mutex<Option<(usize, String)>>> = Arc::new(Mutex::new(None));

    std::thread::scope(|scope| {
        for rank in 0..n {
            let fabric = &fabric;
            let barrier = &barrier;
            let meter = &meters[rank];
            let stat = &stats[rank];
            let slot = &results[rank];
            let mailbox = receivers[rank].lock().take().expect("mailbox taken once");
            let body = &body;
            let panic_info = Arc::clone(&panic_info);
            scope.spawn(move || {
                let ctx = NodeCtx {
                    rank,
                    size: n,
                    fabric,
                    mailbox,
                    parked: Mutex::new(Vec::new()),
                    barrier,
                    meter,
                    stats: stat,
                };
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
                match out {
                    Ok(r) => *slot.lock() = Some(r),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        panic_info.lock().get_or_insert((rank, msg));
                    }
                }
            });
        }
    });

    if let Some((rank, message)) = panic_info.lock().take() {
        return Err(ClusterError::NodePanicked { rank, message });
    }

    let mut reports = Vec::with_capacity(n);
    for (rank, slot) in results.iter().enumerate() {
        let value = slot
            .lock()
            .take()
            .ok_or_else(|| ClusterError::Protocol(format!("rank {rank} produced no result")))??;
        reports.push(NodeReport {
            rank,
            value,
            phase_times: stats[rank].times(),
            phase_work: stats[rank].work(),
            peak_memory: meters[rank].peak(),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_runs() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            Ok(ctx.rank() * 10)
        })
        .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].value, 0);
    }

    #[test]
    fn allgather_orders_by_rank() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let all = ctx.allgather(ctx.rank() as u64 * 100);
            Ok(all)
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_mix() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            let mut sums = Vec::new();
            for round in 0..10u64 {
                let all = ctx.allgather(round * 10 + ctx.rank() as u64);
                sums.push(all.iter().sum::<u64>());
            }
            Ok(sums)
        })
        .unwrap();
        let expect: Vec<u64> = (0..10u64).map(|r| 3 * (r * 10) + 3).collect();
        for rep in reports {
            assert_eq!(rep.value, expect);
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let reports = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, String::from("ping"));
                Ok(ctx.recv::<String>(1))
            } else {
                let m = ctx.recv::<String>(0);
                ctx.send(0, format!("{m}-pong"));
                Ok(m)
            }
        })
        .unwrap();
        assert_eq!(reports[0].value, "ping-pong");
        assert_eq!(reports[1].value, "ping");
    }

    #[test]
    fn recv_distinguishes_types_and_sources() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            match ctx.rank() {
                0 => {
                    // Receive u32 from 2 first even though 1 may arrive first.
                    let a = ctx.recv::<u32>(2);
                    let b = ctx.recv::<u32>(1);
                    let s = ctx.recv::<String>(1);
                    Ok(format!("{a}-{b}-{s}"))
                }
                1 => {
                    ctx.send(0, 11u32);
                    ctx.send(0, String::from("x"));
                    Ok(String::new())
                }
                _ => {
                    ctx.send(0, 22u32);
                    Ok(String::new())
                }
            }
        })
        .unwrap();
        assert_eq!(reports[0].value, "22-11-x");
    }

    #[test]
    fn allreduce_sums() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            Ok(ctx.allreduce(ctx.rank() as u64 + 1, |a, b| a + b))
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, 10);
        }
    }

    #[test]
    fn memory_meter_tracks_peak() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            ctx.memory().alloc(1000)?;
            ctx.memory().alloc(500)?;
            ctx.memory().free(800);
            ctx.memory().alloc(100)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(reports[0].peak_memory, 1500);
    }

    #[test]
    fn memory_limit_aborts_run() {
        let cfg = ClusterConfig::new(2).with_memory_limit(1024);
        let err = run_cluster(&cfg, |ctx| {
            if ctx.rank() == 1 {
                ctx.memory().alloc(512)?;
                ctx.memory().alloc(1024)?; // exceeds
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::MemoryExceeded { rank, requested, in_use, limit } => {
                assert_eq!(rank, 1);
                assert_eq!(requested, 1024);
                assert_eq!(in_use, 512);
                assert_eq!(limit, 1024);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn realloc_shrink_and_grow() {
        let meter = MemoryMeter::new(0, Some(100));
        meter.alloc(50).unwrap();
        meter.realloc(50, 80).unwrap();
        assert_eq!(meter.current(), 80);
        meter.realloc(80, 20).unwrap();
        assert_eq!(meter.current(), 20);
        assert!(meter.realloc(20, 200).is_err());
        assert_eq!(meter.current(), 20);
    }

    #[test]
    fn phase_timing_and_work() {
        let reports = run_cluster(&ClusterConfig::new(1), |ctx| {
            {
                let _t = ctx.timed("gen");
                std::thread::sleep(Duration::from_millis(5));
            }
            ctx.add_work("gen", 42);
            ctx.add_work("gen", 8);
            Ok(())
        })
        .unwrap();
        let t = reports[0].phase_times.get("gen").copied().unwrap();
        assert!(t >= Duration::from_millis(4), "recorded {t:?}");
        assert_eq!(reports[0].phase_work.get("gen"), Some(&50));
    }

    #[test]
    fn node_panic_is_reported() {
        // A panicking rank must not hang the others: use no collectives.
        let err = run_cluster(&ClusterConfig::new(2), |ctx| {
            if ctx.rank() == 0 {
                panic!("boom");
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            ClusterError::NodePanicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let v = if ctx.rank() == 2 { Some(String::from("hello")) } else { None };
            Ok(ctx.broadcast(2, v))
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, "hello");
        }
    }

    #[test]
    fn gather_collects_on_root() {
        let reports =
            run_cluster(&ClusterConfig::new(3), |ctx| Ok(ctx.gather(1, ctx.rank() as u32 * 10)))
                .unwrap();
        assert_eq!(reports[0].value, None);
        assert_eq!(reports[1].value, Some(vec![0, 10, 20]));
        assert_eq!(reports[2].value, None);
    }

    #[test]
    fn scatter_distributes_slots() {
        let reports = run_cluster(&ClusterConfig::new(3), |ctx| {
            let items = if ctx.rank() == 0 { Some(vec![100u64, 200, 300]) } else { None };
            Ok(ctx.scatter(0, items))
        })
        .unwrap();
        assert_eq!(reports[0].value, 100);
        assert_eq!(reports[1].value, 200);
        assert_eq!(reports[2].value, 300);
    }

    #[test]
    fn collectives_compose() {
        // scatter → local work → gather → broadcast in one program.
        let reports = run_cluster(&ClusterConfig::new(4), |ctx| {
            let items = if ctx.rank() == 0 { Some(vec![1u64, 2, 3, 4]) } else { None };
            let mine = ctx.scatter(0, items);
            let squared = mine * mine;
            let gathered = ctx.gather(0, squared);
            let total =
                if ctx.rank() == 0 { Some(gathered.unwrap().iter().sum::<u64>()) } else { None };
            Ok(ctx.broadcast(0, total))
        })
        .unwrap();
        for rep in reports {
            assert_eq!(rep.value, 1 + 4 + 9 + 16);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_cluster(&ClusterConfig::new(4), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            Ok(())
        })
        .unwrap();
    }
}
