//! Property-based tests for the arithmetic substrate: ring/field laws,
//! small-vs-big path consistency, gcd/normalization invariants.

use efm_numeric::{BigUint, DynInt, Rational, Scalar};
use proptest::prelude::*;

fn di(v: i128) -> DynInt {
    DynInt::from_i128(v)
}

/// A DynInt that may be forced onto the big path.
fn any_dynint() -> impl Strategy<Value = DynInt> {
    (any::<i128>(), any::<u8>()).prop_map(|(v, shift)| {
        let base = di(v);
        if shift % 4 == 0 {
            // Promote by squaring-ish: multiply by a big constant.
            base.mul(&di(i128::MAX)).add(&base)
        } else {
            base
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn dynint_add_commutes(a in any_dynint(), b in any_dynint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn dynint_add_associates(a in any_dynint(), b in any_dynint(), c in any_dynint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn dynint_mul_distributes(a in any_dynint(), b in any_dynint(), c in any_dynint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn dynint_sub_then_add_roundtrips(a in any_dynint(), b in any_dynint()) {
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn dynint_neg_involution(a in any_dynint()) {
        prop_assert_eq!(a.neg().neg(), a.clone());
        prop_assert!(a.add(&a.neg()).is_zero());
    }

    #[test]
    fn dynint_divrem_identity(a in any_dynint(), b in any_dynint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a.clone());
        // |r| < |b|
        prop_assert!(r.abs() < b.abs());
    }

    #[test]
    fn dynint_gcd_divides_both(a in any_dynint(), b in any_dynint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.divrem(&g).1.is_zero());
            prop_assert!(b.divrem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn dynint_small_path_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(di(a).add(&di(b)), di(a + b));
        prop_assert_eq!(di(a).sub(&di(b)), di(a - b));
        prop_assert_eq!(di(a).mul(&di(b)), di(a * b));
        if b != 0 {
            prop_assert_eq!(di(a).divrem(&di(b)), (di(a / b), di(a % b)));
        }
    }

    #[test]
    fn dynint_ordering_is_consistent_with_sub(a in any_dynint(), b in any_dynint()) {
        let cmp = a.cmp(&b);
        let diff = a.sub(&b);
        prop_assert_eq!(cmp == std::cmp::Ordering::Greater, diff.signum() > 0);
        prop_assert_eq!(cmp == std::cmp::Ordering::Equal, diff.is_zero());
    }

    #[test]
    fn biguint_divrem_roundtrip(a in any::<u128>(), b in 1u128..) {
        let ba = BigUint::from_u128(a);
        let bb = BigUint::from_u128(b);
        let big = ba.mul(&bb); // exceeds u128 for large inputs
        let (q, r) = big.divrem(&bb);
        prop_assert_eq!(q.mul(&bb).add(&r), big);
        prop_assert!(r < bb);
    }

    #[test]
    fn biguint_decimal_roundtrip_via_display(a in any::<u128>()) {
        prop_assert_eq!(BigUint::from_u128(a).to_string(), a.to_string());
    }

    #[test]
    fn biguint_shifts(a in any::<u128>(), s in 0u32..200) {
        let v = BigUint::from_u128(a);
        prop_assert_eq!(v.shl(s).shr(s), v);
    }

    #[test]
    fn rational_field_laws(an in -10_000i64..10_000, ad in 1i64..100,
                           bn in -10_000i64..10_000, bd in 1i64..100) {
        let a = Rational::new(DynInt::from_i64(an), DynInt::from_i64(ad));
        let b = Rational::new(DynInt::from_i64(bn), DynInt::from_i64(bd));
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.sub(&b).add(&b), a.clone());
        if !b.is_zero() {
            prop_assert_eq!(a.div(&b).mul(&b), a.clone());
        }
        // Normalized invariants.
        prop_assert!(a.denom().signum() > 0);
        prop_assert!(a.numer().gcd(a.denom()).is_one() || a.is_zero());
    }

    #[test]
    fn normalize_vec_preserves_direction(xs in proptest::collection::vec(-1000i64..1000, 1..8)) {
        let mut v: Vec<DynInt> = xs.iter().map(|&x| DynInt::from_i64(x)).collect();
        let orig = v.clone();
        DynInt::normalize_vec(&mut v);
        // Signs and zero pattern unchanged; proportional to the original.
        for (a, b) in orig.iter().zip(&v) {
            prop_assert_eq!(a.signum(), b.signum());
        }
        // Cross-ratios preserved: orig[i]*v[j] == orig[j]*v[i].
        for i in 0..v.len() {
            for j in 0..v.len() {
                prop_assert_eq!(orig[i].mul(&v[j]), orig[j].mul(&v[i]));
            }
        }
        // Content is 1 (or the vector is all zero).
        let mut g = DynInt::zero();
        for x in &v {
            g = g.gcd(x);
        }
        prop_assert!(g.is_one() || g.is_zero());
    }

    #[test]
    fn fused_comb_matches_expansion(a in -100_000i64..100_000, x in -100_000i64..100_000,
                                    b in -100_000i64..100_000, y in -100_000i64..100_000) {
        let (da, dx, db, dy) =
            (DynInt::from_i64(a), DynInt::from_i64(x), DynInt::from_i64(b), DynInt::from_i64(y));
        prop_assert_eq!(DynInt::fused_comb(&da, &dx, &db, &dy), da.mul(&dx).sub(&db.mul(&dy)));
    }
}
