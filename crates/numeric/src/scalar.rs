//! The [`Scalar`] abstraction.
//!
//! The Nullspace Algorithm and all supporting linear algebra are generic over
//! a scalar. Two instantiations are provided:
//!
//! * [`DynInt`] — exact integers with gcd renormalization (the default; EFM
//!   supports are then provably exact),
//! * [`F64Tol`] — `f64` with a zero tolerance (the efmtool-style fast mode,
//!   provided for the numeric ablation study).
//!
//! The trait is deliberately *ring-shaped*, not field-shaped: the fraction-
//! free (Bareiss) elimination used for rank tests only needs exact division
//! by previous pivots, which both instantiations support.

use crate::dynint::DynInt;
use crate::f64tol::F64Tol;
use std::fmt::Debug;

/// Scalar operations required by the EFM pipeline.
pub trait Scalar: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from a small integer (stoichiometric coefficients).
    fn from_i64(v: i64) -> Self;
    /// Whether the value is (within tolerance of) zero.
    fn is_zero(&self) -> bool;
    /// Sign: -1, 0, or +1, consistent with [`Scalar::is_zero`].
    fn signum(&self) -> i32;
    /// Addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, rhs: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, rhs: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Division that is known to be exact (Bareiss pivot division). For
    /// floating point this is ordinary division.
    fn exact_div(&self, rhs: &Self) -> Self;
    /// Canonicalizes a vector in place so that repeated combination does not
    /// blow up magnitudes: integer vectors are divided by their content
    /// (gcd), floating point vectors by their maximum magnitude.
    fn normalize_vec(v: &mut [Self]);
    /// Approximate value for reporting.
    fn to_f64(&self) -> f64;
    /// Fused `a*x - b*y` (hot path of candidate generation).
    #[inline]
    fn fused_comb(a: &Self, x: &Self, b: &Self, y: &Self) -> Self {
        a.mul(x).sub(&b.mul(y))
    }
    /// Pivot desirability for Gaussian elimination: the candidate with the
    /// highest score is chosen. Floating point prefers large magnitudes
    /// (stability); exact integers prefer small magnitudes (growth control).
    fn pivot_score(&self) -> f64 {
        self.to_f64().abs()
    }
    /// True when this scalar type is exact (affects test oracles only).
    fn exact() -> bool;
}

impl Scalar for DynInt {
    fn zero() -> Self {
        DynInt::zero()
    }
    fn one() -> Self {
        DynInt::one()
    }
    fn from_i64(v: i64) -> Self {
        DynInt::from_i64(v)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        DynInt::is_zero(self)
    }
    #[inline]
    fn signum(&self) -> i32 {
        DynInt::signum(self)
    }
    fn add(&self, rhs: &Self) -> Self {
        DynInt::add(self, rhs)
    }
    fn sub(&self, rhs: &Self) -> Self {
        DynInt::sub(self, rhs)
    }
    fn mul(&self, rhs: &Self) -> Self {
        DynInt::mul(self, rhs)
    }
    fn neg(&self) -> Self {
        DynInt::neg(self)
    }
    fn exact_div(&self, rhs: &Self) -> Self {
        DynInt::exact_div(self, rhs)
    }
    fn normalize_vec(v: &mut [Self]) {
        let mut g = DynInt::zero();
        for x in v.iter() {
            g = g.gcd(x);
            if g.is_one() {
                return;
            }
        }
        if g.is_zero() || g.is_one() {
            return;
        }
        for x in v.iter_mut() {
            *x = x.exact_div(&g);
        }
    }
    fn to_f64(&self) -> f64 {
        DynInt::to_f64(self)
    }
    #[inline]
    fn fused_comb(a: &Self, x: &Self, b: &Self, y: &Self) -> Self {
        DynInt::fused_comb(a, x, b, y)
    }
    fn pivot_score(&self) -> f64 {
        // Small nonzero magnitudes keep Bareiss intermediate growth down.
        1.0 / (1.0 + self.to_f64().abs())
    }
    fn exact() -> bool {
        true
    }
}

impl Scalar for crate::Rational {
    fn zero() -> Self {
        crate::Rational::zero()
    }
    fn one() -> Self {
        crate::Rational::one()
    }
    fn from_i64(v: i64) -> Self {
        crate::Rational::from_i64(v)
    }
    fn is_zero(&self) -> bool {
        crate::Rational::is_zero(self)
    }
    fn signum(&self) -> i32 {
        crate::Rational::signum(self)
    }
    fn add(&self, rhs: &Self) -> Self {
        crate::Rational::add(self, rhs)
    }
    fn sub(&self, rhs: &Self) -> Self {
        crate::Rational::sub(self, rhs)
    }
    fn mul(&self, rhs: &Self) -> Self {
        crate::Rational::mul(self, rhs)
    }
    fn neg(&self) -> Self {
        crate::Rational::neg(self)
    }
    fn exact_div(&self, rhs: &Self) -> Self {
        crate::Rational::div(self, rhs)
    }
    fn normalize_vec(_v: &mut [Self]) {
        // Rationals are kept reduced individually; no vector-level
        // renormalization is required for correctness.
    }
    fn to_f64(&self) -> f64 {
        crate::Rational::to_f64(self)
    }
    fn pivot_score(&self) -> f64 {
        // Prefer structurally simple pivots: small numerator and denominator.
        1.0 / (1.0 + self.numer().to_f64().abs() + self.denom().to_f64().abs())
    }
    fn exact() -> bool {
        true
    }
}

impl Scalar for F64Tol {
    fn zero() -> Self {
        F64Tol::zero()
    }
    fn one() -> Self {
        F64Tol::one()
    }
    fn from_i64(v: i64) -> Self {
        F64Tol(v as f64)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        F64Tol::is_zero(self)
    }
    #[inline]
    fn signum(&self) -> i32 {
        F64Tol::signum(self)
    }
    fn add(&self, rhs: &Self) -> Self {
        F64Tol(self.0 + rhs.0)
    }
    fn sub(&self, rhs: &Self) -> Self {
        F64Tol(self.0 - rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        F64Tol(self.0 * rhs.0)
    }
    fn neg(&self) -> Self {
        F64Tol(-self.0)
    }
    fn exact_div(&self, rhs: &Self) -> Self {
        F64Tol(self.0 / rhs.0)
    }
    fn normalize_vec(v: &mut [Self]) {
        // Flush sub-tolerance noise to exact zero FIRST: rescaling a vector
        // whose largest entry is cancellation residue (~1e-16) would
        // amplify noise into a spurious nonzero mode entry.
        for x in v.iter_mut() {
            if x.is_zero() {
                x.0 = 0.0;
            }
        }
        let max = v.iter().map(|x| x.0.abs()).fold(0.0f64, f64::max);
        if max > 0.0 {
            for x in v.iter_mut() {
                x.0 /= max;
            }
        }
    }
    fn to_f64(&self) -> f64 {
        self.0
    }
    fn exact() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn di(v: i64) -> DynInt {
        DynInt::from_i64(v)
    }

    #[test]
    fn dynint_normalize_vec_divides_content() {
        let mut v = vec![di(6), di(-9), di(0), di(12)];
        DynInt::normalize_vec(&mut v);
        assert_eq!(v, vec![di(2), di(-3), di(0), di(4)]);
    }

    #[test]
    fn dynint_normalize_vec_noop_when_coprime() {
        let mut v = vec![di(2), di(3)];
        DynInt::normalize_vec(&mut v);
        assert_eq!(v, vec![di(2), di(3)]);
    }

    #[test]
    fn dynint_normalize_all_zero() {
        let mut v = vec![di(0), di(0)];
        DynInt::normalize_vec(&mut v);
        assert_eq!(v, vec![di(0), di(0)]);
    }

    #[test]
    fn f64_normalize_by_max() {
        let mut v = vec![F64Tol(2.0), F64Tol(-4.0), F64Tol(1.0)];
        F64Tol::normalize_vec(&mut v);
        assert_eq!(v[1].0, -1.0);
        assert_eq!(v[0].0, 0.5);
    }

    #[test]
    fn generic_ops_consistent() {
        fn sum_of_squares<S: Scalar>(xs: &[S]) -> S {
            xs.iter().fold(S::zero(), |acc, x| acc.add(&x.mul(x)))
        }
        let ints: Vec<DynInt> = [1i64, -2, 3].iter().map(|&v| di(v)).collect();
        let floats: Vec<F64Tol> = [1i64, -2, 3].iter().map(|&v| F64Tol(v as f64)).collect();
        assert_eq!(sum_of_squares(&ints), di(14));
        assert_eq!(sum_of_squares(&floats).to_f64(), 14.0);
    }
}
