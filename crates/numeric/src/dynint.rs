//! Dynamically-sized signed integers.
//!
//! [`DynInt`] keeps values in a machine `i128` for as long as they fit and
//! transparently promotes to a heap-allocated sign/magnitude big integer on
//! overflow. EFM candidate combination normalizes every vector by its gcd, so
//! in practice virtually all arithmetic stays on the fast small path; the big
//! path exists so that exotic networks cannot silently corrupt supports.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Sign/magnitude big integer used by the promoted representation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BigInt {
    /// True for strictly negative values. Zero is always non-negative.
    pub negative: bool,
    /// Magnitude; zero iff the value is zero.
    pub magnitude: BigUint,
}

impl BigInt {
    fn normalize(mut self) -> Self {
        if self.magnitude.is_zero() {
            self.negative = false;
        }
        self
    }
}

/// A signed integer that automatically grows past `i128`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum DynInt {
    /// Fast path: fits in an `i128`.
    Small(i128),
    /// Cold path: promoted sign/magnitude representation.
    Big(Box<BigInt>),
}

impl Default for DynInt {
    fn default() -> Self {
        DynInt::Small(0)
    }
}

fn i128_to_big(v: i128) -> BigInt {
    let negative = v < 0;
    let mag = v.unsigned_abs();
    BigInt { negative, magnitude: BigUint::from_u128(mag) }
}

fn big_to_small(b: &BigInt) -> Option<i128> {
    let mag = b.magnitude.to_u128()?;
    if b.negative {
        if mag <= (1u128 << 127) {
            Some((mag as i128).wrapping_neg())
        } else {
            None
        }
    } else if mag <= i128::MAX as u128 {
        Some(mag as i128)
    } else {
        None
    }
}

/// Greatest common divisor of two `u128`s (binary gcd).
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

impl DynInt {
    /// The zero value.
    pub fn zero() -> Self {
        DynInt::Small(0)
    }

    /// The one value.
    pub fn one() -> Self {
        DynInt::Small(1)
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        DynInt::Small(v as i128)
    }

    /// Builds from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        DynInt::Small(v)
    }

    /// Builds from a big integer, demoting to the small path when possible.
    pub fn from_big(b: BigInt) -> Self {
        let b = b.normalize();
        match big_to_small(&b) {
            Some(v) => DynInt::Small(v),
            None => DynInt::Big(Box::new(b)),
        }
    }

    /// Returns the value as `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match self {
            DynInt::Small(v) => Some(*v),
            DynInt::Big(b) => big_to_small(b),
        }
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        match self {
            DynInt::Small(v) => *v == 0,
            DynInt::Big(b) => b.magnitude.is_zero(),
        }
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        matches!(self, DynInt::Small(1))
    }

    /// Sign: -1, 0, or +1.
    #[inline]
    pub fn signum(&self) -> i32 {
        match self {
            DynInt::Small(v) => match v.cmp(&0) {
                Ordering::Less => -1,
                Ordering::Equal => 0,
                Ordering::Greater => 1,
            },
            DynInt::Big(b) => {
                if b.magnitude.is_zero() {
                    0
                } else if b.negative {
                    -1
                } else {
                    1
                }
            }
        }
    }

    /// Whether this value has been promoted off the `i128` fast path.
    pub fn is_promoted(&self) -> bool {
        matches!(self, DynInt::Big(_))
    }

    fn as_big(&self) -> BigInt {
        match self {
            DynInt::Small(v) => i128_to_big(*v),
            DynInt::Big(b) => (**b).clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match self {
            DynInt::Small(v) => match v.checked_abs() {
                Some(a) => DynInt::Small(a),
                None => DynInt::from_big(BigInt {
                    negative: false,
                    magnitude: BigUint::from_u128(v.unsigned_abs()),
                }),
            },
            DynInt::Big(b) => {
                DynInt::from_big(BigInt { negative: false, magnitude: b.magnitude.clone() })
            }
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        match self {
            DynInt::Small(v) => match v.checked_neg() {
                Some(n) => DynInt::Small(n),
                None => DynInt::from_big(BigInt {
                    negative: false,
                    magnitude: BigUint::from_u128(v.unsigned_abs()),
                }),
            },
            DynInt::Big(b) => {
                DynInt::from_big(BigInt { negative: !b.negative, magnitude: b.magnitude.clone() })
            }
        }
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            if let Some(s) = a.checked_add(*b) {
                return DynInt::Small(s);
            }
        }
        let a = self.as_big();
        let b = rhs.as_big();
        let out = if a.negative == b.negative {
            BigInt { negative: a.negative, magnitude: a.magnitude.add(&b.magnitude) }
        } else {
            match a.magnitude.cmp_mag(&b.magnitude) {
                Ordering::Equal => BigInt { negative: false, magnitude: BigUint::zero() },
                Ordering::Greater => {
                    BigInt { negative: a.negative, magnitude: a.magnitude.sub(&b.magnitude) }
                }
                Ordering::Less => {
                    BigInt { negative: b.negative, magnitude: b.magnitude.sub(&a.magnitude) }
                }
            }
        };
        DynInt::from_big(out)
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            if let Some(s) = a.checked_sub(*b) {
                return DynInt::Small(s);
            }
        }
        self.add(&rhs.neg())
    }

    /// Multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            if let Some(p) = a.checked_mul(*b) {
                return DynInt::Small(p);
            }
        }
        let a = self.as_big();
        let b = rhs.as_big();
        DynInt::from_big(BigInt {
            negative: a.negative != b.negative && !a.magnitude.is_zero() && !b.magnitude.is_zero(),
            magnitude: a.magnitude.mul(&b.magnitude),
        })
    }

    /// Exact division: panics if `rhs` does not divide `self`.
    pub fn exact_div(&self, rhs: &Self) -> Self {
        assert!(!rhs.is_zero(), "DynInt division by zero");
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            // i128::MIN / -1 is the only overflowing case.
            if !(*a == i128::MIN && *b == -1) {
                debug_assert_eq!(a % b, 0, "exact_div with remainder");
                return DynInt::Small(a / b);
            }
        }
        let a = self.as_big();
        let b = rhs.as_big();
        let (q, r) = a.magnitude.divrem(&b.magnitude);
        assert!(r.is_zero(), "exact_div with remainder");
        DynInt::from_big(BigInt {
            negative: a.negative != b.negative && !q.is_zero(),
            magnitude: q,
        })
    }

    /// Quotient and remainder (truncated toward zero, like `i128`).
    pub fn divrem(&self, rhs: &Self) -> (Self, Self) {
        assert!(!rhs.is_zero(), "DynInt division by zero");
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            if !(*a == i128::MIN && *b == -1) {
                return (DynInt::Small(a / b), DynInt::Small(a % b));
            }
        }
        let a = self.as_big();
        let b = rhs.as_big();
        let (q, r) = a.magnitude.divrem(&b.magnitude);
        (
            DynInt::from_big(BigInt {
                negative: a.negative != b.negative && !q.is_zero(),
                magnitude: q,
            }),
            DynInt::from_big(BigInt { negative: a.negative && !r.is_zero(), magnitude: r }),
        )
    }

    /// Greatest common divisor of absolute values; `gcd(0, 0) == 0`.
    pub fn gcd(&self, rhs: &Self) -> Self {
        if let (DynInt::Small(a), DynInt::Small(b)) = (self, rhs) {
            return DynInt::Small(gcd_u128(a.unsigned_abs(), b.unsigned_abs()) as i128);
        }
        let a = self.as_big();
        let b = rhs.as_big();
        DynInt::from_big(BigInt { negative: false, magnitude: a.magnitude.gcd(&b.magnitude) })
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(&self) -> f64 {
        match self {
            DynInt::Small(v) => *v as f64,
            DynInt::Big(b) => {
                let m = b.magnitude.to_f64();
                if b.negative {
                    -m
                } else {
                    m
                }
            }
        }
    }

    /// Fused combination `a*x - b*y`, the hot operation of candidate
    /// generation. Stays entirely on the small path when everything fits.
    #[inline]
    pub fn fused_comb(a: &Self, x: &Self, b: &Self, y: &Self) -> Self {
        if let (DynInt::Small(a), DynInt::Small(x), DynInt::Small(b), DynInt::Small(y)) =
            (a, x, b, y)
        {
            if let (Some(p1), Some(p2)) = (a.checked_mul(*x), b.checked_mul(*y)) {
                if let Some(d) = p1.checked_sub(p2) {
                    return DynInt::Small(d);
                }
            }
        }
        a.mul(x).sub(&b.mul(y))
    }
}

impl Ord for DynInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (DynInt::Small(a), DynInt::Small(b)) => a.cmp(b),
            _ => {
                let a = self.as_big();
                let b = other.as_big();
                match (a.negative, b.negative) {
                    (false, true) => Ordering::Greater,
                    (true, false) => Ordering::Less,
                    (false, false) => a.magnitude.cmp_mag(&b.magnitude),
                    (true, true) => b.magnitude.cmp_mag(&a.magnitude),
                }
            }
        }
    }
}

impl PartialOrd for DynInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynInt::Small(v) => write!(f, "{v}"),
            DynInt::Big(b) => {
                if b.negative {
                    write!(f, "-")?;
                }
                write!(f, "{}", b.magnitude)
            }
        }
    }
}

impl std::str::FromStr for DynInt {
    type Err = String;

    /// Parses a decimal integer of arbitrary size (optional leading `-`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let (negative, digits) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("invalid integer literal '{s}'"));
        }
        let ten = DynInt::from_i64(10);
        let mut acc = DynInt::zero();
        for b in digits.bytes() {
            acc = acc.mul(&ten).add(&DynInt::from_i64((b - b'0') as i64));
        }
        Ok(if negative { acc.neg() } else { acc })
    }
}

impl From<i64> for DynInt {
    fn from(v: i64) -> Self {
        DynInt::from_i64(v)
    }
}

impl From<i128> for DynInt {
    fn from(v: i128) -> Self {
        DynInt::from_i128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(v: i128) -> DynInt {
        DynInt::Small(v)
    }

    #[test]
    fn add_promotes_on_overflow() {
        let a = small(i128::MAX);
        let s = a.add(&small(1));
        assert!(s.is_promoted());
        assert_eq!(s.sub(&small(1)), a);
        assert!(!s.sub(&small(1)).is_promoted());
    }

    #[test]
    fn signs() {
        assert_eq!(small(-5).signum(), -1);
        assert_eq!(small(0).signum(), 0);
        assert_eq!(small(5).signum(), 1);
        let big = small(i128::MAX).mul(&small(-3));
        assert_eq!(big.signum(), -1);
        assert_eq!(big.neg().signum(), 1);
    }

    #[test]
    fn mul_promote_and_demote() {
        let a = small(i128::MAX).mul(&small(2));
        assert!(a.is_promoted());
        let back = a.exact_div(&small(2));
        assert!(!back.is_promoted());
        assert_eq!(back, small(i128::MAX));
    }

    #[test]
    fn mixed_sign_add() {
        let big_pos = small(i128::MAX).mul(&small(4));
        let big_neg = big_pos.neg();
        assert!(big_pos.add(&big_neg).is_zero());
        assert_eq!(big_pos.add(&small(-1)).sub(&big_pos), small(-1));
    }

    #[test]
    fn exact_div_signs() {
        assert_eq!(small(-12).exact_div(&small(4)), small(-3));
        assert_eq!(small(-12).exact_div(&small(-4)), small(3));
        let b = small(i128::MAX).mul(&small(6));
        assert_eq!(b.exact_div(&small(-3)), small(i128::MAX).mul(&small(-2)));
    }

    #[test]
    #[should_panic(expected = "remainder")]
    fn exact_div_checks_divisibility() {
        let b = small(i128::MAX).mul(&small(6)).add(&small(1));
        let _ = b.exact_div(&small(3));
    }

    #[test]
    fn divrem_truncates_toward_zero() {
        let (q, r) = small(-7).divrem(&small(2));
        assert_eq!((q, r), (small(-3), small(-1)));
        let big = small(i128::MAX).mul(&small(10)).add(&small(7));
        let (q, r) = big.divrem(&small(10));
        assert_eq!(q, small(i128::MAX));
        assert_eq!(r, small(7));
    }

    #[test]
    fn i128_min_edge_cases() {
        let m = small(i128::MIN);
        assert_eq!(m.neg().to_f64(), -(i128::MIN as f64));
        assert!(m.neg().is_promoted());
        assert_eq!(m.abs(), m.neg());
        let (q, r) = m.divrem(&small(-1));
        assert!(r.is_zero());
        assert_eq!(q, m.neg());
    }

    #[test]
    fn gcd_values() {
        assert_eq!(small(48).gcd(&small(-36)), small(12));
        assert_eq!(small(0).gcd(&small(0)), small(0));
        assert_eq!(small(0).gcd(&small(-7)), small(7));
        let b = small(i128::MAX).mul(&small(4));
        assert_eq!(b.gcd(&small(2)), small(2));
    }

    #[test]
    fn fused_comb_small_and_big() {
        // 3*5 - 2*7 = 1
        assert_eq!(DynInt::fused_comb(&small(3), &small(5), &small(2), &small(7)), small(1));
        // Forces promotion through the products.
        let big = small(i128::MAX);
        let r = DynInt::fused_comb(&big, &big, &big, &big.sub(&small(1)));
        assert_eq!(r, big);
    }

    #[test]
    fn ordering_across_reprs() {
        let b = small(i128::MAX).mul(&small(3));
        assert!(b > small(i128::MAX));
        assert!(b.neg() < small(i128::MIN));
        assert!(small(2) > small(-2));
    }

    #[test]
    fn display() {
        assert_eq!(small(-42).to_string(), "-42");
        let b = small(i128::MAX).add(&small(1));
        assert_eq!(b.to_string(), "170141183460469231731687303715884105728");
        assert_eq!(b.neg().to_string(), "-170141183460469231731687303715884105728");
    }

    #[test]
    fn from_str_roundtrips() {
        for v in [
            "0",
            "-1",
            "42",
            "170141183460469231731687303715884105728",
            "-99999999999999999999999999999999999999999999",
        ] {
            let parsed: DynInt = v.parse().unwrap();
            assert_eq!(parsed.to_string(), v);
        }
        assert!("".parse::<DynInt>().is_err());
        assert!("12a".parse::<DynInt>().is_err());
        assert!("--3".parse::<DynInt>().is_err());
        assert_eq!("+7".parse::<DynInt>().unwrap(), small(7));
    }
}
