//! # efm-numeric — exact arithmetic substrate for EFM computation
//!
//! Elementary-flux-mode enumeration is a combinatorial geometry problem: the
//! *support* (zero/nonzero pattern) of every intermediate vector decides which
//! candidates survive. A single wrong zero flips supports and corrupts the
//! whole enumeration, so the default arithmetic must be exact.
//!
//! This crate provides, dependency-free:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (limb vector),
//! * [`DynInt`] — signed integers living in `i128` until overflow promotes
//!   them to a boxed big integer,
//! * [`Rational`] — reduced exact rationals over [`DynInt`],
//! * [`F64Tol`] — tolerance-based `f64` (the efmtool-style fast mode),
//! * [`Scalar`] — the trait the rest of the workspace is generic over.

#![warn(missing_docs)]

mod biguint;
mod dynint;
mod f64tol;
mod rational;
mod scalar;

pub use biguint::BigUint;
pub use dynint::{gcd_u128, BigInt, DynInt};
pub use f64tol::{F64Tol, DEFAULT_TOLERANCE};
pub use rational::{to_primitive_integer_vec, Rational};
pub use scalar::Scalar;
