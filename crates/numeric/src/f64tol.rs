//! Tolerance-based floating point scalar.
//!
//! The efmtool lineage of EFM implementations runs the Nullspace Algorithm in
//! `double` precision with a zero tolerance. [`F64Tol`] reproduces that mode
//! so the exact-vs-float design decision can be benchmarked (see the `scalar`
//! ablation bench). Zero detection uses an absolute tolerance; vectors are
//! renormalized by their maximum magnitude to keep values in range.

use std::fmt;

/// Absolute tolerance under which a value is considered zero.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// An `f64` with tolerance-based zero semantics.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct F64Tol(pub f64);

impl F64Tol {
    /// The zero value.
    pub fn zero() -> Self {
        F64Tol(0.0)
    }

    /// The one value.
    pub fn one() -> Self {
        F64Tol(1.0)
    }

    /// Whether the value is within tolerance of zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.abs() < DEFAULT_TOLERANCE
    }

    /// Sign with tolerance: values within tolerance of zero report 0.
    #[inline]
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.0 > 0.0 {
            1
        } else {
            -1
        }
    }
}

impl fmt::Debug for F64Tol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for F64Tol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_zero() {
        assert!(F64Tol(0.0).is_zero());
        assert!(F64Tol(1e-12).is_zero());
        assert!(!F64Tol(1e-6).is_zero());
        assert_eq!(F64Tol(1e-12).signum(), 0);
        assert_eq!(F64Tol(-3.0).signum(), -1);
        assert_eq!(F64Tol(0.5).signum(), 1);
    }
}
