//! Exact rational numbers over [`DynInt`].
//!
//! Used wherever a true field is required (reduced row echelon form, kernel
//! basis construction, flux-value recovery). Values are kept normalized:
//! `gcd(|num|, den) == 1` and `den > 0`; zero is `0/1`.

use crate::dynint::DynInt;
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num/den` with `den > 0`, always reduced.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: DynInt,
    den: DynInt,
}

impl Rational {
    /// The zero value.
    pub fn zero() -> Self {
        Rational { num: DynInt::zero(), den: DynInt::one() }
    }

    /// The one value.
    pub fn one() -> Self {
        Rational { num: DynInt::one(), den: DynInt::one() }
    }

    /// Builds `num/den`, normalizing sign and reducing. Panics if `den == 0`.
    pub fn new(num: DynInt, den: DynInt) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let (num, den) = if den.signum() < 0 { (num.neg(), den.neg()) } else { (num, den) };
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational { num: num.exact_div(&g), den: den.exact_div(&g) }
        }
    }

    /// Builds a rational from an integer.
    pub fn from_int(v: DynInt) -> Self {
        Rational { num: v, den: DynInt::one() }
    }

    /// Builds a rational from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Self::from_int(DynInt::from_i64(v))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &DynInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &DynInt {
        &self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign: -1, 0, or +1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Addition.
    pub fn add(&self, rhs: &Self) -> Self {
        Rational::new(self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den)), self.den.mul(&rhs.den))
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        Rational::new(self.num.mul(&rhs.den).sub(&rhs.num.mul(&self.den)), self.den.mul(&rhs.den))
    }

    /// Multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        Rational::new(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }

    /// Division. Panics if `rhs` is zero.
    pub fn div(&self, rhs: &Self) -> Self {
        assert!(!rhs.is_zero(), "Rational division by zero");
        Rational::new(self.num.mul(&rhs.den), self.den.mul(&rhs.num))
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Rational { num: self.num.neg(), den: self.den.clone() }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "Rational::recip of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b, d > 0)  <=>  a*d vs c*b
        self.num.mul(&other.den).cmp(&other.num.mul(&self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::str::FromStr for Rational {
    type Err = String;

    /// Parses `a`, `a/b`, or a decimal like `-1.25`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if let Some((n, d)) = t.split_once('/') {
            let num: DynInt = n.trim().parse()?;
            let den: DynInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(format!("zero denominator in '{s}'"));
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_part, frac_part)) = t.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(format!("invalid decimal literal '{s}'"));
            }
            let negative = int_part.trim_start().starts_with('-');
            let int_v: DynInt = if int_part.is_empty() || int_part == "-" {
                DynInt::zero()
            } else {
                int_part.parse()?
            };
            let frac_v: DynInt = frac_part.parse()?;
            let mut scale = DynInt::one();
            let ten = DynInt::from_i64(10);
            for _ in 0..frac_part.len() {
                scale = scale.mul(&ten);
            }
            let mag = int_v.abs().mul(&scale).add(&frac_v);
            let num = if negative { mag.neg() } else { mag };
            return Ok(Rational::new(num, scale));
        }
        Ok(Rational::from_int(t.parse()?))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Clears denominators: scales a slice of rationals by the lcm of their
/// denominators and divides by the gcd of the numerators, returning the
/// canonical primitive integer vector with the same direction.
///
/// Returns all-zero for an all-zero input.
pub fn to_primitive_integer_vec(vals: &[Rational]) -> Vec<DynInt> {
    let mut lcm = DynInt::one();
    for v in vals {
        let g = lcm.gcd(v.denom());
        lcm = lcm.exact_div(&g).mul(v.denom());
    }
    let mut ints: Vec<DynInt> =
        vals.iter().map(|v| v.numer().mul(&lcm.exact_div(v.denom()))).collect();
    let mut g = DynInt::zero();
    for v in &ints {
        g = g.gcd(v);
    }
    if !g.is_zero() && !g.is_one() {
        for v in &mut ints {
            *v = v.exact_div(&g);
        }
    }
    ints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(DynInt::from_i64(n), DynInt::from_i64(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -5), Rational::zero());
        assert!(r(0, 7).denom().is_one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        r(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2).add(&r(1, 3)), r(5, 6));
        assert_eq!(r(1, 2).sub(&r(1, 3)), r(1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(2, 3).div(&r(4, 9)), r(3, 2));
        assert_eq!(r(-5, 7).recip(), r(-7, 5));
        assert_eq!(r(3, 4).neg().abs(), r(3, 4));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-3, 7).to_string(), "-3/7");
    }

    #[test]
    fn primitive_integer_vec() {
        let v = vec![r(1, 2), r(-2, 3), r(0, 1), r(5, 6)];
        let ints = to_primitive_integer_vec(&v);
        let expect: Vec<DynInt> = [3i64, -4, 0, 5].iter().map(|&x| DynInt::from_i64(x)).collect();
        assert_eq!(ints, expect);
    }

    #[test]
    fn primitive_integer_vec_reduces_content() {
        let v = vec![r(2, 1), r(4, 1), r(-6, 1)];
        let ints = to_primitive_integer_vec(&v);
        let expect: Vec<DynInt> = [1i64, 2, -3].iter().map(|&x| DynInt::from_i64(x)).collect();
        assert_eq!(ints, expect);
    }

    #[test]
    fn from_str_forms() {
        assert_eq!("3".parse::<Rational>().unwrap(), r(3, 1));
        assert_eq!("-3/6".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!("1.25".parse::<Rational>().unwrap(), r(5, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!(".5".parse::<Rational>().unwrap(), r(1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a.b".parse::<Rational>().is_err());
    }

    #[test]
    fn primitive_integer_vec_zero() {
        let v = vec![Rational::zero(), Rational::zero()];
        assert!(to_primitive_integer_vec(&v).iter().all(|x| x.is_zero()));
    }
}
