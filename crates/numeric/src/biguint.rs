//! Arbitrary-precision unsigned integers.
//!
//! A minimal, dependency-free big-unsigned type used as the overflow escape
//! hatch for [`crate::DynInt`]. Limbs are `u64`, stored little-endian with no
//! trailing zero limbs (the canonical form); the empty limb vector represents
//! zero. The implementation favours simplicity and correctness: values in EFM
//! computations almost always fit in `i128` after gcd normalization, so the
//! big path is cold.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros; empty means zero.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The zero value.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The one value.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds a value from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the canonical little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Returns the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + rhs`.
    pub fn add(&self, rhs: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - rhs`. Panics if `rhs > self`.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert!(self.cmp_mag(rhs) != Ordering::Less, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// `self * rhs` (schoolbook; inputs here are rarely beyond a few limbs).
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: u32) -> Self {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Compares magnitudes.
    pub fn cmp_mag(&self, rhs: &Self) -> Ordering {
        if self.limbs.len() != rhs.limbs.len() {
            return self.limbs.len().cmp(&rhs.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Quotient and remainder of `self / rhs`. Panics if `rhs` is zero.
    pub fn divrem(&self, rhs: &Self) -> (Self, Self) {
        assert!(!rhs.is_zero(), "BigUint division by zero");
        match self.cmp_mag(rhs) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        // Single-limb divisor fast path.
        if rhs.limbs.len() == 1 {
            let d = rhs.limbs[0] as u128;
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            return (BigUint::from_limbs(q), BigUint::from_u128(rem));
        }
        // General case: bitwise long division. O(bit_len * limbs) — acceptable
        // because the big path is cold in EFM workloads.
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = Self::zero();
        for bit in (0..self.bit_len()).rev() {
            rem = rem.shl(1);
            if (self.limbs[(bit / 64) as usize] >> (bit % 64)) & 1 == 1 {
                if rem.limbs.is_empty() {
                    rem.limbs.push(1);
                } else {
                    rem.limbs[0] |= 1;
                }
            }
            if rem.cmp_mag(rhs) != Ordering::Less {
                rem = rem.sub(rhs);
                quotient[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        rem.trim();
        (BigUint::from_limbs(quotient), rem)
    }

    /// Greatest common divisor (binary gcd).
    pub fn gcd(&self, rhs: &Self) -> Self {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = rhs.clone();
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let shift = az.min(bz);
        a = a.shr(az);
        b = b.shr(bz);
        loop {
            if a.cmp_mag(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
            b = b.shr(b.trailing_zeros());
        }
    }

    fn trailing_zeros(&self) -> u32 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u32 * 64 + l.trailing_zeros();
            }
        }
        0
    }

    /// Approximate conversion to `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + l as f64;
        }
        acc
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        let divisor = BigUint::from_u64(CHUNK);
        while !cur.is_zero() {
            let (q, r) = cur.divrem(&divisor);
            chunks.push(r.to_u128().unwrap() as u64);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.pop().unwrap().to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:019}"));
        }
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn from_limbs_trims() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs(), &[5]);
    }

    #[test]
    fn add_with_carry() {
        let a = big(u128::MAX);
        let b = BigUint::one();
        let s = a.add(&b);
        assert_eq!(s.bit_len(), 129);
        assert_eq!(s.sub(&b), a);
    }

    #[test]
    fn sub_borrows() {
        let a = big(1u128 << 100);
        let b = big((1u128 << 100) - 12345);
        assert_eq!(a.sub(&b).to_u128(), Some(12345));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&big(2));
    }

    #[test]
    fn mul_crosses_limbs() {
        let a = big(u64::MAX as u128);
        let b = big(u64::MAX as u128);
        assert_eq!(a.mul(&b).to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn mul_three_limb_result() {
        let a = big(u128::MAX);
        let b = big(3);
        let p = a.mul(&b);
        assert_eq!(p.bit_len(), 130);
        let (q, r) = p.divrem(&b);
        assert!(r.is_zero());
        assert_eq!(q, a);
    }

    #[test]
    fn divrem_small_divisor() {
        let a = big(123_456_789_012_345_678_901_234_567u128);
        let (q, r) = a.divrem(&big(1_000_000));
        assert_eq!(q.to_u128(), Some(123_456_789_012_345_678_901u128));
        assert_eq!(r.to_u128(), Some(234_567));
    }

    #[test]
    fn divrem_general() {
        let a = big(u128::MAX).mul(&big(u128::MAX));
        let b = big(u128::MAX - 12345);
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn divrem_by_larger_is_zero() {
        let (q, r) = big(7).divrem(&big(1000));
        assert!(q.is_zero());
        assert_eq!(r.to_u128(), Some(7));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(48).gcd(&big(36)).to_u128(), Some(12));
        assert_eq!(big(0).gcd(&big(5)).to_u128(), Some(5));
        assert_eq!(big(5).gcd(&big(0)).to_u128(), Some(5));
        assert_eq!(big(17).gcd(&big(13)).to_u128(), Some(1));
    }

    #[test]
    fn gcd_large() {
        let a = big(1u128 << 90).mul(&big(9));
        let b = big(1u128 << 80).mul(&big(6));
        let g = a.gcd(&b);
        let (_, r1) = a.divrem(&g);
        let (_, r2) = b.divrem(&g);
        assert!(r1.is_zero() && r2.is_zero());
        // a = 9·2^90 = 3²·2^90, b = 6·2^80 = 3·2^81, so gcd = 3·2^81.
        assert_eq!(g, big(3).mul(&big(1u128 << 81)));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big(0xDEAD_BEEF_1234_5678_9ABC_DEF0u128);
        assert_eq!(a.shl(67).shr(67), a);
        assert_eq!(a.shr(200), BigUint::zero());
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(12345).to_string(), "12345");
        let huge = big(u128::MAX);
        assert_eq!(huge.to_string(), "340282366920938463463374607431768211455");
        let huger = huge.mul(&big(10)).add(&big(7));
        assert_eq!(huger.to_string(), "3402823669209384634633746074317682114557");
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(big(u128::MAX) < big(u128::MAX).add(&BigUint::one()));
    }

    #[test]
    fn to_f64_rough() {
        let v = big(1u128 << 100);
        let rel = (v.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }
}
