//! Criterion ablation benchmarks for the design decisions DESIGN.md calls
//! out: row-ordering heuristic, elementarity test, scalar arithmetic, and
//! execution backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efm_core::{enumerate_with_scalar, Backend, CandidateTest, EfmOptions, RowOrdering};
use efm_metnet::generator::{layered_branches, random_network, RandomNetworkParams};
use efm_metnet::MetabolicNetwork;
use efm_numeric::{DynInt, F64Tol};

fn midsize_network() -> MetabolicNetwork {
    // Reproducible medium workload: ~200 EFMs in milliseconds.
    let params = RandomNetworkParams {
        metabolites: 8,
        reactions: 16,
        reversible_prob: 0.3,
        mean_degree: 2.8,
        exchange_prob: 0.35,
        max_coeff: 2,
    };
    random_network(&params, 20260705)
}

fn ordering_ablation(c: &mut Criterion) {
    let net = midsize_network();
    let mut g = c.benchmark_group("ordering");
    for (label, ordering) in [
        ("paper", RowOrdering::Paper),
        ("fewest-nonzeros", RowOrdering::FewestNonzeros),
        ("as-is", RowOrdering::AsIs),
        ("random", RowOrdering::Random(99)),
    ] {
        let opts = EfmOptions { ordering, ..Default::default() };
        g.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| {
                enumerate_with_scalar::<DynInt>(&net, opts, &Backend::Serial).unwrap().efms.len()
            })
        });
    }
    g.finish();
}

fn test_ablation(c: &mut Criterion) {
    let net = midsize_network();
    let mut g = c.benchmark_group("elementarity-test");
    for (label, test) in [("rank", CandidateTest::Rank), ("adjacency", CandidateTest::Adjacency)] {
        let opts = EfmOptions { test, ..Default::default() };
        g.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| {
                enumerate_with_scalar::<DynInt>(&net, opts, &Backend::Serial).unwrap().efms.len()
            })
        });
    }
    let opts = EfmOptions { exact_rank_test: true, ..Default::default() };
    g.bench_with_input(BenchmarkId::from_parameter("rank-exact"), &opts, |b, opts| {
        b.iter(|| enumerate_with_scalar::<DynInt>(&net, opts, &Backend::Serial).unwrap().efms.len())
    });
    g.finish();
}

fn scalar_ablation(c: &mut Criterion) {
    let net = layered_branches(5, 3);
    let opts = EfmOptions::default();
    let mut g = c.benchmark_group("scalar");
    g.bench_function("exact-dynint", |b| {
        b.iter(|| {
            enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
    g.bench_function("f64-tolerance", |b| {
        b.iter(|| {
            enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
    g.finish();
}

fn backend_ablation(c: &mut Criterion) {
    let net = midsize_network();
    let opts = EfmOptions::default();
    let mut g = c.benchmark_group("backend");
    g.bench_function("serial", |b| {
        b.iter(|| {
            enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
    g.bench_function("rayon", |b| {
        b.iter(|| enumerate_with_scalar::<DynInt>(&net, &opts, &Backend::Rayon).unwrap().efms.len())
    });
    for nodes in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("cluster", nodes), &nodes, |b, &n| {
            let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(n));
            b.iter(|| enumerate_with_scalar::<DynInt>(&net, &opts, &backend).unwrap().efms.len())
        });
    }
    g.finish();
}

fn compression_ablation(c: &mut Criterion) {
    let net = midsize_network();
    let mut g = c.benchmark_group("compression");
    for (label, compression) in [
        ("full", efm_metnet::CompressionOptions::default()),
        ("kernel-only", efm_metnet::CompressionOptions::kernel_only()),
        ("none", efm_metnet::CompressionOptions::none()),
    ] {
        let opts = EfmOptions { compression, ..Default::default() };
        g.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| {
                enumerate_with_scalar::<DynInt>(&net, opts, &Backend::Serial).unwrap().efms.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(15);
    targets = ordering_ablation, test_ablation, scalar_ablation, backend_ablation,
        compression_ablation
);
criterion_main!(ablations);
