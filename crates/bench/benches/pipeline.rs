//! Criterion micro/meso benchmarks of the pipeline building blocks:
//! pattern operations, rank tests, kernel construction, compression, and
//! whole-network enumeration at toy scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efm_bitset::{Pattern1, Pattern2};
use efm_core::{enumerate_with_scalar, Backend, EfmOptions};
use efm_linalg::{gauss_rank_in_place_f64, kernel_basis, rank_of_cols, Mat};
use efm_metnet::generator::{layered_branches, random_network, RandomNetworkParams};
use efm_metnet::{compress, examples::toy_network};
use efm_numeric::{DynInt, F64Tol, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_patterns(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let pats1: Vec<Pattern1> =
        (0..4096).map(|_| Pattern1::from_indices((0..64).filter(|_| rng.gen_bool(0.3)))).collect();
    let pats2: Vec<Pattern2> =
        (0..4096).map(|_| Pattern2::from_indices((0..128).filter(|_| rng.gen_bool(0.3)))).collect();
    c.bench_function("pattern1_union_count_sweep", |b| {
        b.iter(|| {
            let probe = pats1[0];
            let mut acc = 0u32;
            for p in &pats1 {
                acc += probe.union_count(black_box(p));
            }
            acc
        })
    });
    c.bench_function("pattern2_union_count_sweep", |b| {
        b.iter(|| {
            let probe = pats2[0];
            let mut acc = 0u32;
            for p in &pats2 {
                acc += probe.union_count(black_box(p));
            }
            acc
        })
    });
    c.bench_function("pattern2_subset_sweep", |b| {
        b.iter(|| {
            let probe = pats2[0];
            pats2.iter().filter(|p| p.is_subset_of(black_box(&probe))).count()
        })
    });
}

fn bench_rank_tests(c: &mut Criterion) {
    // A yeast-shaped matrix: 40 rows, sparse columns.
    let net = efm_metnet::yeast::network_i();
    let (red, _) = compress(&net);
    let m: Mat<DynInt> = {
        let mut out = Mat::zeros(red.stoich.rows(), red.num_reduced());
        for r in 0..red.stoich.rows() {
            for cidx in 0..red.num_reduced() {
                // scale row-wise handled implicitly: use numerator to keep ints
                let v = red.stoich.get(r, cidx);
                out.set(r, cidx, v.numer().clone());
            }
        }
        out
    };
    let mut rng = StdRng::seed_from_u64(11);
    let supports: Vec<Vec<usize>> = (0..64)
        .map(|_| {
            let size = rng.gen_range(10usize..30);
            let mut cols: Vec<usize> = (0..red.num_reduced()).collect();
            for i in (1..cols.len()).rev() {
                cols.swap(i, rng.gen_range(0..=i));
            }
            cols.truncate(size);
            cols
        })
        .collect();
    c.bench_function("rank_f64_yeast_supports", |b| {
        let mut scratch = Vec::new();
        let nr = m.rows();
        b.iter(|| {
            let mut acc = 0usize;
            for cols in &supports {
                scratch.clear();
                scratch.resize(nr * cols.len(), 0.0f64);
                for (j, &cc) in cols.iter().enumerate() {
                    for r in 0..nr {
                        scratch[r * cols.len() + j] = m.get(r, cc).to_f64();
                    }
                }
                acc += gauss_rank_in_place_f64(&mut scratch, nr, cols.len(), 1e-9);
            }
            acc
        })
    });
    c.bench_function("rank_exact_yeast_supports", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for cols in supports.iter().take(8) {
                acc += rank_of_cols(&m, cols, &mut scratch);
            }
            acc
        })
    });
}

fn bench_kernel_and_compress(c: &mut Criterion) {
    let net = efm_metnet::yeast::network_i();
    let n: Mat<Rational> = net.stoichiometry();
    c.bench_function("kernel_basis_yeast", |b| {
        b.iter(|| kernel_basis(black_box(&n), &[]).k.cols())
    });
    c.bench_function("compress_yeast_network_i", |b| {
        b.iter(|| compress(black_box(&net)).0.num_reduced())
    });
    let params = RandomNetworkParams { metabolites: 12, reactions: 24, ..Default::default() };
    let rnet = random_network(&params, 3);
    c.bench_function("compress_random_12x24", |b| {
        b.iter(|| compress(black_box(&rnet)).0.num_reduced())
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let toy = toy_network();
    let opts = EfmOptions::default();
    c.bench_function("enumerate_toy_exact", |b| {
        b.iter(|| {
            enumerate_with_scalar::<DynInt>(&toy, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
    c.bench_function("enumerate_toy_f64", |b| {
        b.iter(|| {
            enumerate_with_scalar::<F64Tol>(&toy, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
    let layered = layered_branches(5, 3);
    c.bench_function("enumerate_layered_5x3_exact", |b| {
        b.iter(|| {
            enumerate_with_scalar::<DynInt>(&layered, &opts, &Backend::Serial).unwrap().efms.len()
        })
    });
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(20);
    targets = bench_patterns, bench_rank_tests, bench_kernel_and_compress, bench_enumeration
);
criterion_main!(pipeline);
