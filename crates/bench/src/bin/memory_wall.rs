//! The §IV memory-failure narrative: the combinatorial parallel algorithm
//! (Algorithm 2) aborts when the per-node mode matrix exceeds local memory
//! ("the computation had to be abandoned at the 59th iteration, two
//! iterations before completion"), while the divide-and-conquer split fits
//! each subproblem within the same per-node capacity.
//!
//! ```text
//! memory_wall [--scale toy|lite|full] [--limit BYTES] [--nodes 4]
//!             [--partition R54r,R90r,R60r]
//! ```
//!
//! Without `--limit`, the harness first measures the unsplit run's peak
//! per-node footprint and then re-runs with a cap set between the split and
//! unsplit peaks, demonstrating the failure and the fix.

use efm_bench::{flag, harness_options, network_ii, parse_cli, pick_partition, Scale};
use efm_core::{enumerate_divide_conquer_with_scalar, enumerate_with_scalar, Backend, EfmError};
use efm_numeric::F64Tol;

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let requested: Vec<String> = flag(&flags, "partition")
        .unwrap_or("R54r,R90r,R60r")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let net = network_ii(scale);
    let (red, _) = efm_metnet::compress(&net);
    let preferred: Vec<&str> = requested.iter().map(String::as_str).collect();
    let partition = pick_partition(&net, &red, &preferred, requested.len());
    if partition != requested {
        println!("note: using partition {partition:?} (requested {requested:?})");
    }
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let opts = harness_options();

    // Phase 1: unlimited run to measure peaks.
    println!("== phase 1: measure per-node peaks (no memory cap) ==");
    let unsplit = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("unsplit run failed");
    println!(
        "unsplit: {} EFMs, peak {} intermediate modes",
        unsplit.efms.len(),
        unsplit.stats.peak_modes
    );
    let split = enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("split run failed");
    let split_peak = split.subsets.iter().map(|s| s.stats.peak_modes).max().unwrap_or(0);
    println!(
        "split {{{}}}: {} EFMs, worst subset peak {} intermediate modes",
        partition.join(","),
        split.efms.len(),
        split_peak
    );

    // Phase 2: cap between the two peaks (or user-provided).
    let limit: u64 = match flag(&flags, "limit") {
        Some(v) => v.parse().expect("bad --limit"),
        None => {
            // Modes dominate the accounted bytes; scale the cap from the
            // observed peak mode counts.
            let per_mode = 64u64; // conservative bytes/mode estimate
            (split_peak as u64).max(1) * per_mode * 4
        }
    };
    println!("\n== phase 2: per-node capacity {limit} bytes ==");
    let capped = efm_cluster::ClusterConfig::new(nodes).with_memory_limit(limit);
    match enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Cluster(capped.clone())) {
        Err(EfmError::Cluster(efm_cluster::ClusterError::MemoryExceeded {
            rank,
            in_use,
            limit,
            ..
        })) => {
            println!(
                "unsplit Algorithm 2: ABORTED — rank {rank} exceeded {limit} B (had {in_use} B) \
                 [reproduces the paper's abandoned run]"
            );
        }
        Ok(out) => println!(
            "unsplit Algorithm 2: completed under the cap ({} EFMs) — raise --limit pressure",
            out.efms.len()
        ),
        Err(e) => println!("unsplit Algorithm 2: failed differently: {e}"),
    }
    match enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(capped),
    ) {
        Ok(out) => println!(
            "combined Algorithm 3: completed under the same cap ({} EFMs across {} subsets) \
             [the paper's fix]",
            out.efms.len(),
            out.subsets.len()
        ),
        Err(e) => {
            println!("combined Algorithm 3: failed: {e} — refine the partition (paper adds R22r)")
        }
    }
}
