//! The §IV memory-failure narrative: the combinatorial parallel algorithm
//! (Algorithm 2) aborts when the per-node footprint exceeds local memory
//! ("the computation had to be abandoned at the 59th iteration, two
//! iterations before completion"), and four recoveries are demonstrated:
//!
//! 1. **streaming generation** — the same unsplit enumeration completes
//!    under the same per-node cap once candidate generation runs through
//!    the bounded streaming pipeline (the legacy path materializes the
//!    whole unfiltered pair stripe, and that transient is what breaches
//!    the cap);
//! 2. the manual recovery of the paper — re-run as Algorithm 3 over a
//!    given partition, every subset fitting under the cap;
//! 3. checkpoint/resume — the capped legacy run snapshots every iteration,
//!    aborts with a typed `MemoryExceeded`, and is resumed from the last
//!    completed iteration on an uncapped cluster, byte-identical;
//! 4. automatic escalation — `enumerate_with_escalation` turns the abort
//!    into a divide-and-conquer re-launch without operator intervention.
//!
//! ```text
//! memory_wall [--scale toy|lite|full] [--limit BYTES] [--nodes 4]
//!             [--partition R54r,R90r,R60r]
//! ```
//!
//! Without `--limit`, the harness measures the charged per-node peaks of
//! the legacy (materialize-then-filter) and streaming unsplit runs plus
//! the worst split subset, and sets the cap halfway between "roomy enough
//! for streaming and every subset" and "too tight for the legacy run".

use efm_bench::{flag, harness_options, network_ii, parse_cli, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_with_scalar, enumerate_resumable_with_scalar,
    enumerate_with_escalation_scalar, enumerate_with_scalar, Backend, CheckpointConfig, EfmError,
    EfmOptions, EngineCheckpoint,
};
use efm_numeric::F64Tol;

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let requested: Vec<String> = flag(&flags, "partition")
        .unwrap_or("R54r,R90r,R60r")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let net = network_ii(scale);
    let (red, _) = efm_metnet::compress(&net);
    let preferred: Vec<&str> = requested.iter().map(String::as_str).collect();
    let partition = pick_partition(&net, &red, &preferred, requested.len());
    if partition != requested {
        println!("note: using partition {partition:?} (requested {requested:?})");
    }
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let opts = harness_options();
    let legacy_opts = EfmOptions { streaming: false, ..opts.clone() };

    // Phase 1: unlimited runs to measure the charged per-node peaks. The
    // legacy path materializes the full unfiltered candidate stripe each
    // iteration and charges it; the streaming path holds (and charges) at
    // most one batch of it.
    println!("== phase 1: measure per-node peaks (no memory cap) ==");
    let legacy = enumerate_with_scalar::<F64Tol>(
        &net,
        &legacy_opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("unsplit legacy run failed");
    println!(
        "unsplit legacy:    {} EFMs, peak {} accounted bytes/node \
         (transient high-water {} B)",
        legacy.efms.len(),
        legacy.stats.peak_bytes,
        legacy.stats.peak_transient_bytes
    );
    let streaming = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("unsplit streaming run failed");
    assert_eq!(
        streaming.efms, legacy.efms,
        "streaming and legacy generation disagree on the EFM set"
    );
    println!(
        "unsplit streaming: {} EFMs, peak {} accounted bytes/node \
         (transient high-water {} B, {} batches)",
        streaming.efms.len(),
        streaming.stats.peak_bytes,
        streaming.stats.peak_transient_bytes,
        streaming.stats.stream_batches
    );
    let split = enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("split run failed");
    let split_bytes = split.subsets.iter().map(|s| s.stats.peak_bytes).max().unwrap_or(0);
    println!(
        "split {{{}}}: {} EFMs, worst subset peak {} accounted bytes/node",
        partition.join(","),
        split.efms.len(),
        split_bytes
    );

    // Phase 2: cap between the measured peaks (or user-provided). The cap
    // must admit the streaming unsplit run and every subset of the split,
    // yet be breached by the legacy unsplit run; every quantity is guarded
    // so a degenerate measurement (zero or inverted peaks, as on the toy
    // scale) degrades to a loose-but-valid cap instead of a zero or
    // underflowed one.
    let fits = streaming.stats.peak_bytes.max(split_bytes);
    let limit: u64 = match flag(&flags, "limit") {
        Some(v) => v.parse().expect("bad --limit"),
        None if legacy.stats.peak_bytes > fits => fits + (legacy.stats.peak_bytes - fits) / 2,
        None => fits.saturating_mul(2).max(1),
    };
    if legacy.stats.peak_bytes <= fits {
        println!(
            "note: legacy peak {} B does not exceed the streaming/split peak {} B at this \
             scale; the cap {limit} B will not reproduce the abort",
            legacy.stats.peak_bytes, fits
        );
    }
    println!("\n== phase 2: per-node capacity {limit} bytes ==");
    let capped = efm_cluster::ClusterConfig::new(nodes).with_memory_limit(limit);
    let ck_path = std::env::temp_dir().join("memory_wall.efck");
    let _ = std::fs::remove_file(&ck_path);
    let ck_cfg = CheckpointConfig::new(&ck_path);
    let t0 = std::time::Instant::now();
    let mut aborted = false;
    match enumerate_resumable_with_scalar::<F64Tol>(
        &net,
        &legacy_opts,
        &Backend::Cluster(capped.clone()),
        None,
        Some(&ck_cfg),
    ) {
        Err(EfmError::Cluster(efm_cluster::ClusterError::MemoryExceeded {
            rank,
            in_use,
            limit,
            ..
        })) => {
            aborted = true;
            println!(
                "unsplit legacy Algorithm 2: ABORTED in {:.2}s — rank {rank} exceeded {limit} B \
                 (had {in_use} B) [reproduces the paper's abandoned run]",
                t0.elapsed().as_secs_f64()
            );
        }
        Ok(out) => println!(
            "unsplit legacy Algorithm 2: completed under the cap ({} EFMs) — raise --limit \
             pressure",
            out.efms.len()
        ),
        Err(e) => println!("unsplit legacy Algorithm 2: failed differently: {e}"),
    }
    match enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Cluster(capped.clone())) {
        Ok(out) => {
            assert_eq!(
                out.efms, legacy.efms,
                "capped streaming enumeration diverged from the uncapped run"
            );
            println!(
                "unsplit streaming:          completed under the same cap ({} EFMs, identical \
                 to the uncapped run) [bounded generation closes the memory hole]",
                out.efms.len()
            );
        }
        Err(e) => println!("unsplit streaming: failed under the cap: {e} — raise --limit"),
    }
    match enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(capped),
    ) {
        Ok(out) => println!(
            "combined Algorithm 3:       completed under the same cap ({} EFMs across {} \
             subsets) [the paper's fix]",
            out.efms.len(),
            out.subsets.len()
        ),
        Err(e) => {
            println!("combined Algorithm 3: failed: {e} — refine the partition (paper adds R22r)")
        }
    }

    // Phase 3: resume the aborted legacy run from its last checkpoint.
    println!("\n== phase 3: checkpoint/resume of the aborted run ==");
    if aborted {
        match EngineCheckpoint::load(&ck_path) {
            Ok(ck) => {
                println!(
                    "checkpoint at {} holds {} completed iterations",
                    ck_path.display(),
                    ck.iterations_completed()
                );
                let resumed = enumerate_resumable_with_scalar::<F64Tol>(
                    &net,
                    &legacy_opts,
                    &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
                    Some(&ck),
                    None,
                )
                .expect("resumed run failed");
                assert_eq!(
                    resumed.efms, legacy.efms,
                    "resume-from-checkpoint diverged from the uninterrupted run"
                );
                println!(
                    "resumed run: {} EFMs — identical to the uninterrupted enumeration",
                    resumed.efms.len()
                );
            }
            Err(e) => println!("no usable checkpoint ({e}) — the cap tripped before iteration 1"),
        }
    } else {
        println!("skipped: the capped run did not abort");
    }

    // Phase 4: automatic escalation — abort -> suggested split -> complete.
    // Streaming closes the *transient* hole, but the replicated mode matrix
    // itself can still outgrow a node, so the cap here is tightened below
    // the streaming unsplit peak (while staying above the worst subset):
    // the direct attempt aborts and the ladder recovers it without
    // operator intervention.
    let esc_limit = if streaming.stats.peak_bytes > split_bytes {
        split_bytes + (streaming.stats.peak_bytes - split_bytes) / 2
    } else {
        limit
    };
    println!("\n== phase 4: automatic divide-and-conquer escalation ({esc_limit} B/node) ==");
    let esc_capped = efm_cluster::ClusterConfig::new(nodes).with_memory_limit(esc_limit);
    let t1 = std::time::Instant::now();
    match enumerate_with_escalation_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(esc_capped),
        partition.len().max(2),
    ) {
        Ok(out) => {
            for a in &out.attempts {
                let what = if a.qsub == 0 {
                    "direct run".to_string()
                } else {
                    format!("2^{} subsets over {{{}}}", a.qsub, a.partition.join(","))
                };
                match &a.error {
                    Some(e) => println!("  attempt {what}: {e}"),
                    None => println!("  attempt {what}: completed"),
                }
            }
            assert_eq!(
                out.outcome.efms, legacy.efms,
                "escalated enumeration diverged from the uninterrupted run"
            );
            println!(
                "escalation recovered {} EFMs in {:.2}s (escalated: {}) — identical to the \
                 uninterrupted enumeration",
                out.outcome.efms.len(),
                t1.elapsed().as_secs_f64(),
                out.escalated()
            );
        }
        Err(e) => println!("escalation exhausted: {e} — raise --limit or deepen the ladder"),
    }
    let _ = std::fs::remove_file(&ck_path);
}
