//! The §IV memory-failure narrative: the combinatorial parallel algorithm
//! (Algorithm 2) aborts when the per-node mode matrix exceeds local memory
//! ("the computation had to be abandoned at the 59th iteration, two
//! iterations before completion"), while the divide-and-conquer split fits
//! each subproblem within the same per-node capacity.
//!
//! ```text
//! memory_wall [--scale toy|lite|full] [--limit BYTES] [--nodes 4]
//!             [--partition R54r,R90r,R60r]
//! ```
//!
//! Without `--limit`, the harness first measures the unsplit run's peak
//! per-node footprint and then re-runs with a cap set between the split and
//! unsplit peaks, demonstrating the failure and the fix — three ways:
//!
//! 1. the manual recovery of the paper (re-run as Algorithm 3 over a given
//!    partition);
//! 2. checkpoint/resume: the capped run snapshots every iteration, aborts
//!    with a typed `MemoryExceeded`, and is resumed from the last completed
//!    iteration on an uncapped cluster — the recovered EFM set is asserted
//!    identical to the uninterrupted run;
//! 3. automatic escalation: `enumerate_with_escalation` turns the abort
//!    into a divide-and-conquer re-launch over suggested splits without
//!    operator intervention.

use efm_bench::{flag, harness_options, network_ii, parse_cli, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_with_scalar, enumerate_resumable_with_scalar,
    enumerate_with_escalation_scalar, enumerate_with_scalar, Backend, CheckpointConfig, EfmError,
    EngineCheckpoint,
};
use efm_numeric::F64Tol;

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let requested: Vec<String> = flag(&flags, "partition")
        .unwrap_or("R54r,R90r,R60r")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let net = network_ii(scale);
    let (red, _) = efm_metnet::compress(&net);
    let preferred: Vec<&str> = requested.iter().map(String::as_str).collect();
    let partition = pick_partition(&net, &red, &preferred, requested.len());
    if partition != requested {
        println!("note: using partition {partition:?} (requested {requested:?})");
    }
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    let opts = harness_options();

    // Phase 1: unlimited run to measure peaks.
    println!("== phase 1: measure per-node peaks (no memory cap) ==");
    let unsplit = enumerate_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("unsplit run failed");
    println!(
        "unsplit: {} EFMs, peak {} intermediate modes, peak {} accounted bytes/node",
        unsplit.efms.len(),
        unsplit.stats.peak_modes,
        unsplit.stats.peak_bytes
    );
    let split = enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
    )
    .expect("split run failed");
    let split_peak = split.subsets.iter().map(|s| s.stats.peak_modes).max().unwrap_or(0);
    let split_bytes = split.subsets.iter().map(|s| s.stats.peak_bytes).max().unwrap_or(0);
    println!(
        "split {{{}}}: {} EFMs, worst subset peak {} intermediate modes, \
         peak {} accounted bytes/node",
        partition.join(","),
        split.efms.len(),
        split_peak,
        split_bytes
    );

    // Phase 2: cap between the two measured byte peaks (or user-provided):
    // roomy enough for every subset of the split, too tight for the
    // unsplit run.
    let limit: u64 = match flag(&flags, "limit") {
        Some(v) => v.parse().expect("bad --limit"),
        None if unsplit.stats.peak_bytes > split_bytes => {
            split_bytes + (unsplit.stats.peak_bytes - split_bytes) / 2
        }
        None => split_bytes.max(1) * 2,
    };
    println!("\n== phase 2: per-node capacity {limit} bytes ==");
    let capped = efm_cluster::ClusterConfig::new(nodes).with_memory_limit(limit);
    let ck_path = std::env::temp_dir().join("memory_wall.efck");
    let _ = std::fs::remove_file(&ck_path);
    let ck_cfg = CheckpointConfig::new(&ck_path);
    let t0 = std::time::Instant::now();
    let mut aborted = false;
    match enumerate_resumable_with_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(capped.clone()),
        None,
        Some(&ck_cfg),
    ) {
        Err(EfmError::Cluster(efm_cluster::ClusterError::MemoryExceeded {
            rank,
            in_use,
            limit,
            ..
        })) => {
            aborted = true;
            println!(
                "unsplit Algorithm 2: ABORTED in {:.2}s — rank {rank} exceeded {limit} B \
                 (had {in_use} B) [reproduces the paper's abandoned run]",
                t0.elapsed().as_secs_f64()
            );
        }
        Ok(out) => println!(
            "unsplit Algorithm 2: completed under the cap ({} EFMs) — raise --limit pressure",
            out.efms.len()
        ),
        Err(e) => println!("unsplit Algorithm 2: failed differently: {e}"),
    }
    match enumerate_divide_conquer_with_scalar::<F64Tol>(
        &net,
        &opts,
        &names,
        &Backend::Cluster(capped.clone()),
    ) {
        Ok(out) => println!(
            "combined Algorithm 3: completed under the same cap ({} EFMs across {} subsets) \
             [the paper's fix]",
            out.efms.len(),
            out.subsets.len()
        ),
        Err(e) => {
            println!("combined Algorithm 3: failed: {e} — refine the partition (paper adds R22r)")
        }
    }

    // Phase 3: resume the aborted run from its last checkpoint.
    println!("\n== phase 3: checkpoint/resume of the aborted run ==");
    if aborted {
        match EngineCheckpoint::load(&ck_path) {
            Ok(ck) => {
                println!(
                    "checkpoint at {} holds {} completed iterations",
                    ck_path.display(),
                    ck.iterations_completed()
                );
                let resumed = enumerate_resumable_with_scalar::<F64Tol>(
                    &net,
                    &opts,
                    &Backend::Cluster(efm_cluster::ClusterConfig::new(nodes)),
                    Some(&ck),
                    None,
                )
                .expect("resumed run failed");
                assert_eq!(
                    resumed.efms, unsplit.efms,
                    "resume-from-checkpoint diverged from the uninterrupted run"
                );
                println!(
                    "resumed run: {} EFMs — identical to the uninterrupted enumeration",
                    resumed.efms.len()
                );
            }
            Err(e) => println!("no usable checkpoint ({e}) — the cap tripped before iteration 1"),
        }
    } else {
        println!("skipped: the capped run did not abort");
    }

    // Phase 4: automatic escalation — abort -> suggested split -> complete.
    println!("\n== phase 4: automatic divide-and-conquer escalation ==");
    let t1 = std::time::Instant::now();
    match enumerate_with_escalation_scalar::<F64Tol>(
        &net,
        &opts,
        &Backend::Cluster(capped),
        partition.len().max(2),
    ) {
        Ok(out) => {
            for a in &out.attempts {
                let what = if a.qsub == 0 {
                    "direct run".to_string()
                } else {
                    format!("2^{} subsets over {{{}}}", a.qsub, a.partition.join(","))
                };
                match &a.error {
                    Some(e) => println!("  attempt {what}: {e}"),
                    None => println!("  attempt {what}: completed"),
                }
            }
            assert_eq!(
                out.outcome.efms, unsplit.efms,
                "escalated enumeration diverged from the uninterrupted run"
            );
            println!(
                "escalation recovered {} EFMs in {:.2}s (escalated: {}) — identical to the \
                 uninterrupted enumeration",
                out.outcome.efms.len(),
                t1.elapsed().as_secs_f64(),
                out.escalated()
            );
        }
        Err(e) => println!("escalation exhausted: {e} — raise --limit or deepen the ladder"),
    }
    let _ = std::fs::remove_file(&ck_path);
}
