//! PR 4 acceptance benchmark: wall-time overhead of run telemetry
//! (spans + counters + per-link traffic accounting) over an untraced run.
//!
//! ```text
//! trace_overhead [--scale toy|lite|full] [--nodes 4] [--reps 5]
//!                [--out BENCH_pr4.json]
//! ```
//!
//! Two budgets from DESIGN.md §10: a *traced* run (telemetry globally
//! enabled, events recorded into the ring buffers) must stay within 2% of
//! the untraced wall time, and the *disabled* path must be a no-op (it is
//! measured here too, but its budget is the same 2% bar — the real
//! disabled-path guarantee, no allocation per event, is a code property
//! tested in `crates/obs`). Both runs must produce the identical EFM set.

use efm_bench::{flag, harness_options, network_i, parse_cli, Scale};
use efm_cluster::ClusterConfig;
use efm_core::{enumerate_with_scalar, Backend};
use efm_numeric::F64Tol;
use std::time::Instant;

fn timed<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let reps: usize = flag(&flags, "reps").unwrap_or("5").parse().expect("bad --reps");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr4.json").to_string();

    let net = network_i(scale);
    let opts = harness_options();
    let backend = Backend::Cluster(ClusterConfig::new(nodes));

    println!("trace_overhead — Network I ({scale:?}), {nodes} ranks, {reps} reps");

    let mut run = || enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).expect("run failed");

    // Warm up both paths, then interleave best-of-N pairs: run-to-run
    // drift on a shared box dwarfs the quantity under test.
    efm_obs::set_enabled(false);
    let _ = run();
    efm_obs::set_enabled(true);
    efm_obs::reset();
    let _ = run();

    let (mut off_s, mut on_s) = (f64::INFINITY, f64::INFINITY);
    let (mut off, mut on) = (None, None);
    let mut events = 0usize;
    for _ in 0..reps {
        efm_obs::set_enabled(false);
        let (s, r) = timed(&mut run);
        if s < off_s {
            (off_s, off) = (s, Some(r));
        }
        efm_obs::set_enabled(true);
        efm_obs::reset();
        let (s, r) = timed(&mut run);
        if s < on_s {
            (on_s, on) = (s, Some(r));
        }
        events = efm_obs::snapshot().event_count();
    }
    efm_obs::set_enabled(false);
    let (off, on) = (off.unwrap(), on.unwrap());
    println!("  untraced : {off_s:.3}s  ({} EFMs)", off.efms.len());
    println!("  traced   : {on_s:.3}s  ({} EFMs, {events} events recorded)", on.efms.len());

    assert_eq!(off.efms, on.efms, "tracing must not change the EFM set");
    assert!(events > 0, "traced run recorded no events — instrumentation is dead");

    let overhead_pct = (on_s / off_s.max(1e-9) - 1.0) * 100.0;
    let within_budget = overhead_pct <= 2.0;
    println!(
        "  overhead: {overhead_pct:+.2}%  (budget ≤ 2%: {})",
        if within_budget { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"cluster\",\n  \"nodes\": {nodes},\n  \
         \"reps\": {reps},\n  \"efms\": {efms},\n  \"events\": {events},\n  \
         \"untraced_s\": {off_s:.6},\n  \"traced_s\": {on_s:.6},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \"budget_pct\": 2.0,\n  \
         \"within_budget\": {within_budget}\n}}\n",
        efms = on.efms.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
    assert!(within_budget, "tracing overhead {overhead_pct:.2}% exceeds the 2% budget");
}
