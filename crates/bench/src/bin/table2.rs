//! Table II — combinatorial parallel Nullspace Algorithm (Algorithm 2) on
//! S. cerevisiae Network I, phase-time breakdown over a node-count sweep.
//!
//! ```text
//! table2 [--scale toy|lite|full] [--nodes 1,2,4,8,16] [--float|--exact]
//! ```
//!
//! The paper ran 1–64 physical cores; this harness runs the same
//! bulk-synchronous program on the simulated cluster. On a machine with
//! fewer physical cores than ranks, per-phase wall times are reported under
//! the bulk-synchronous model (max over ranks per phase) and the *work
//! split* (pairs per rank) shows the combinatorial balance that drives the
//! paper's scaling. A `model(s)` column projects wall time onto an
//! idealized machine with one core per rank and an InfiniBand-class
//! α/β interconnect (α = 2 µs per message, β = 1 ns/byte): per-rank
//! compute work divides by the rank count, communication grows with it —
//! the crossover structure of the paper's Table II.

use efm_bench::{flag, harness_options, network_i, paper, parse_cli, secs, Scale, Table};
use efm_core::{enumerate_with_scalar, phases, Backend, EfmOutcome};
use efm_numeric::{DynInt, F64Tol};

/// α/β interconnect model (InfiniBand-class, as on the paper's Calhoun).
const ALPHA_SECS: f64 = 2e-6;
const BETA_SECS_PER_BYTE: f64 = 1e-9;

/// Total allgather bytes for the α/β model: the measured traffic counter
/// when the cluster backend recorded one, else the old accepted-volume
/// approximation (serial runs ship nothing but still need a model input).
fn comm_bytes(out: &EfmOutcome) -> u64 {
    let _ = phases::COMM_BYTES;
    if out.stats.comm_bytes > 0 {
        return out.stats.comm_bytes;
    }
    out.stats.iterations.iter().map(|it| it.accepted * 64).sum()
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: Vec<usize> = flag(&flags, "nodes")
        .unwrap_or("1,2,4,8,16")
        .split(',')
        .map(|s| s.trim().parse().expect("bad --nodes"))
        .collect();
    let exact = flag(&flags, "exact").is_some();
    let net = network_i(scale);
    println!(
        "Table II reproduction — Algorithm 2 on Network I ({scale:?} scale, {} arithmetic)",
        if exact { "exact integer" } else { "f64" }
    );
    println!(
        "paper reference (full scale): {} EFMs, {} candidate modes, serial {:.2}s on 2008 Xeon\n",
        paper::NETWORK_I_EFMS,
        paper::NETWORK_I_CANDIDATES,
        paper::TABLE2_SERIAL_SECONDS
    );

    let opts = harness_options();
    let mut table = Table::new(&[
        "nodes",
        "EFMs",
        "candidates",
        "pruned",
        "dedup hits",
        "rank tests",
        "comm MB",
        "gen(s)",
        "dedup(s)",
        "tree(s)",
        "rank(s)",
        "comm(s)",
        "merge(s)",
        "total(s)",
        "model(s)",
        "model speedup",
    ]);
    let mut serial_total: Option<f64> = None;
    let mut serial_model: Option<f64> = None;
    for &n in &nodes {
        let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(n));
        let out: EfmOutcome = if exact {
            enumerate_with_scalar::<DynInt>(&net, &opts, &backend).expect("run failed")
        } else {
            enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).expect("run failed")
        };
        let total = out.stats.total_time.as_secs_f64();
        let _base = *serial_total.get_or_insert(total);
        // Modeled time on one core per rank: the single-rank run's compute
        // time divides by n (the pair stripes are balanced — asserted in
        // tests/cluster_behavior.rs), communication follows the α/β model.
        let compute_this = (out.stats.phases.generate
            + out.stats.phases.dedup
            + out.stats.phases.tree_filter
            + out.stats.phases.rank_test
            + out.stats.phases.merge)
            .as_secs_f64();
        let base_compute = *serial_model.get_or_insert(compute_this);
        let rounds = out.stats.iterations.len() as f64;
        let bytes = comm_bytes(&out);
        let comm_model =
            rounds * ALPHA_SECS * (n as f64 - 1.0).max(0.0) + bytes as f64 * BETA_SECS_PER_BYTE;
        let model = base_compute / n as f64 + comm_model;
        let mbase = base_compute; // n = 1 model has negligible comm
        table.row(vec![
            n.to_string(),
            out.efms.len().to_string(),
            out.stats.candidates_generated.to_string(),
            out.stats.tree_pruned.to_string(),
            out.stats.dedup_hits.to_string(),
            out.stats.rank_tests.to_string(),
            format!("{:.1}", bytes as f64 / 1e6),
            secs(out.stats.phases.generate),
            secs(out.stats.phases.dedup),
            secs(out.stats.phases.tree_filter),
            secs(out.stats.phases.rank_test),
            secs(out.stats.phases.communicate),
            secs(out.stats.phases.merge),
            format!("{total:.2}"),
            format!("{model:.2}"),
            format!("{:.2}x", mbase / model.max(1e-9)),
        ]);
    }
    table.print();
    println!("\nNote: wall-clock speedup requires as many physical cores as simulated ranks;");
    println!("on smaller machines the balanced 'candidates' split across ranks carries the");
    println!("paper's scaling claim (see DESIGN.md §4).");
}
