//! PR 8 acceptance benchmark: fault-free overhead of the heartbeat /
//! failover layer over the plain cluster backend.
//!
//! ```text
//! failover_overhead [--scale toy|lite|full] [--nodes 4] [--reps 3]
//!                   [--heartbeat-ms 10] [--max-pct 2]
//!                   [--out BENCH_pr8.json]
//! ```
//!
//! With `--failover` on, every rank runs a beater and a detector thread and
//! every data-plane frame carries an epoch tag and CRC; on a fault-free run
//! all of that must cost ≤ 2% wall time. Both pipelines must produce the
//! identical EFM set and an empty recovery log.

use efm_bench::{flag, harness_options, network_i, parse_cli, Scale};
use efm_cluster::ClusterConfig;
use efm_core::{enumerate_with_scalar, Backend};
use efm_numeric::F64Tol;
use std::time::{Duration, Instant};

fn timed<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let reps: usize = flag(&flags, "reps").unwrap_or("3").parse().expect("bad --reps");
    let heartbeat_ms: u64 =
        flag(&flags, "heartbeat-ms").unwrap_or("10").parse().expect("bad --heartbeat-ms");
    let max_pct: f64 = flag(&flags, "max-pct").unwrap_or("2").parse().expect("bad --max-pct");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr8.json").to_string();

    let net = network_i(scale);
    let opts = harness_options();
    let plain = Backend::Cluster(ClusterConfig::new(nodes));
    let guarded = Backend::Cluster(
        ClusterConfig::new(nodes)
            .with_failover(true)
            .with_heartbeat(Duration::from_millis(heartbeat_ms.max(1))),
    );

    println!(
        "failover_overhead — Network I ({scale:?}), {nodes} ranks, {reps} reps, \
         heartbeat {heartbeat_ms}ms"
    );

    let mut run_plain =
        || enumerate_with_scalar::<F64Tol>(&net, &opts, &plain).expect("plain run failed");
    let mut run_guarded =
        || enumerate_with_scalar::<F64Tol>(&net, &opts, &guarded).expect("failover run failed");

    // One warmup of each, then interleaved best-of-N pairs: run-to-run
    // drift on a shared box dwarfs the quantity under test.
    let _ = run_plain();
    let _ = run_guarded();
    let (mut plain_s, mut guarded_s) = (f64::INFINITY, f64::INFINITY);
    let (mut base, mut watched) = (None, None);
    for _ in 0..reps {
        let (s, r) = timed(&mut run_plain);
        if s < plain_s {
            (plain_s, base) = (s, Some(r));
        }
        let (s, r) = timed(&mut run_guarded);
        if s < guarded_s {
            (guarded_s, watched) = (s, Some(r));
        }
    }
    let (base, watched) = (base.unwrap(), watched.unwrap());
    println!("  plain cluster    : {plain_s:.3}s  ({} EFMs)", base.efms.len());
    println!("  failover enabled : {guarded_s:.3}s  ({} EFMs)", watched.efms.len());

    assert_eq!(base.efms, watched.efms, "the heartbeat layer must not change the EFM set");
    assert!(watched.stats.recovery.is_empty(), "fault-free run must log no recovery events");
    assert_eq!(watched.stats.failovers, 0, "fault-free run must not fail over");
    assert_eq!(watched.stats.ranks_lost, 0, "fault-free run must not lose ranks");

    let overhead_pct = (guarded_s / plain_s.max(1e-9) - 1.0) * 100.0;
    let within_budget = overhead_pct <= max_pct;
    println!(
        "  overhead: {overhead_pct:+.2}%  (budget ≤ {max_pct}%: {})",
        if within_budget { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"failover_overhead\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"cluster\",\n  \"nodes\": {nodes},\n  \
         \"reps\": {reps},\n  \"heartbeat_ms\": {heartbeat_ms},\n  \"efms\": {efms},\n  \
         \"plain_s\": {plain_s:.6},\n  \"failover_s\": {guarded_s:.6},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \"budget_pct\": {max_pct},\n  \
         \"within_budget\": {within_budget}\n}}\n",
        efms = watched.efms.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
    assert!(
        within_budget,
        "failover fault-free overhead {overhead_pct:.2}% exceeds the {max_pct}% budget"
    );
}
