//! PR 6 acceptance benchmark: the SIMD + cache-blocked candidate kernel.
//!
//! ```text
//! kernel_bench [--scale toy|lite|full] [--reps 3] [--out BENCH_pr6.json]
//! ```
//!
//! Three layers, finest first:
//!
//! 1. **Lane ops** — throughput of each batched bitset primitive
//!    (`bounds_sweep`, `union_counts`, `is_subset_any`) at the scalar tier
//!    vs the best tier the host supports, on synthetic dense batches.
//! 2. **Whole block** — `prefilter_hits` over one L1-sized block exactly as
//!    [`efm_core::Engine`] issues it (bound sweep + compare + hit gather).
//! 3. **Whole run** — yeast-lite Network I end to end (`--kernel scalar`
//!    vs `--kernel simd`, adjacency test, shared-memory backend) through
//!    the kernel's slab pipeline: the count-pruned vectorized subset scan
//!    replaces the pattern-tree probes of PR 1. The recorded
//!    `BENCH_pr1.json` tree-pipeline phase times on the same host are the
//!    acceptance baseline (`speedup_vs_pr1_tree_pipeline`).
//!
//! Both kernels enumerate the identical EFM set (asserted here and by the
//! differential suite); only the wall time may differ. Results land in
//! `BENCH_pr6.json`.

use efm_bench::{flag, harness_options, network_i, parse_cli, Scale};
use efm_bitset::kernel::{bounds_sweep, is_subset_any, prefilter_hits, union_counts};
use efm_bitset::{detect_tier, KernelTier, Pattern2};
use efm_core::{enumerate_with_scalar, Backend, CandidateTest, EfmOptions, EfmOutcome, KernelKind};
use efm_numeric::F64Tol;
use std::time::Instant;

/// Pattern width used by the micro layers: two words (65–128 reactions)
/// is the width yeast-lite dispatches to.
type P = Pattern2;
const W: usize = 2;

/// Batch length for the micro layers — one engine block at this width.
const BATCH: usize = 512;

/// splitmix64, the same deterministic generator the kernel unit tests use.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pattern(state: &mut u64, density_shift: u32) -> P {
    let mut p = P::empty();
    for w in 0..W * 64 {
        if splitmix(state) >> (64 - density_shift) == 0 {
            p.set(w);
        }
    }
    p
}

/// Best-of-`reps` wall time of `body`, each rep running `iters` times.
fn best_secs(reps: usize, iters: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            body();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct LaneResult {
    name: &'static str,
    scalar_mpairs: f64,
    simd_mpairs: f64,
}

impl LaneResult {
    fn speedup(&self) -> f64 {
        self.simd_mpairs / self.scalar_mpairs.max(1e-12)
    }
}

/// Layer 1+2: per-primitive and whole-block throughput, scalar vs best.
fn micro(reps: usize, best: KernelTier) -> Vec<LaneResult> {
    let mut state = 0x1234_5678u64;
    let pat = pattern(&mut state, 2);
    let sup = pattern(&mut state, 2);
    let negs: Vec<P> = (0..BATCH).map(|_| pattern(&mut state, 2)).collect();
    let nsups: Vec<P> = (0..BATCH).map(|_| pattern(&mut state, 2)).collect();
    let iters = 2_000;
    let mpairs = |secs: f64| (iters as f64 * BATCH as f64) / secs.max(1e-12) / 1e6;

    // Deep-scan batch for the subset probe: every candidate agrees with
    // `sub_sup` on all but the final word, so neither tier can early-exit
    // before the last word — the throughput case a count-pruned slab scan
    // hits (the prefix is exactly the candidates that *could* reject).
    let mut sub_sup = P::empty();
    for b in 0..W * 64 - 1 {
        if splitmix(&mut state) & 1 == 1 {
            sub_sup.set(b);
        }
    }
    let sub_cands: Vec<P> = (0..BATCH)
        .map(|_| {
            let mut c = pattern(&mut state, 1).intersect(&sub_sup);
            c.set(W * 64 - 1); // outside `sub_sup`: violation in the final word
            c
        })
        .collect();

    let mut bounds = Vec::new();
    let mut hits: Vec<u32> = Vec::new();
    // A bound every block meets occasionally, so the compare loop does
    // real gather work without every pair surviving.
    let max_nz = (W as u32 * 64) / 2;

    let run = |name: &'static str, f: &mut dyn FnMut(KernelTier)| {
        let s = best_secs(reps, iters, || f(KernelTier::Scalar));
        let v = best_secs(reps, iters, || f(best));
        LaneResult { name, scalar_mpairs: mpairs(s), simd_mpairs: mpairs(v) }
    };

    vec![
        run("bounds_sweep", &mut |tier| {
            bounds_sweep(tier, &pat, &sup, &negs, &nsups, &mut bounds);
            std::hint::black_box(&bounds);
        }),
        run("union_counts", &mut |tier| {
            union_counts(tier, &pat, &negs, &mut bounds);
            std::hint::black_box(&bounds);
        }),
        run("is_subset_any", &mut |tier| {
            std::hint::black_box(is_subset_any(tier, &sub_cands, &sub_sup));
        }),
        run("prefilter_block", &mut |tier| {
            hits.clear();
            prefilter_hits(tier, &pat, &sup, &negs, &nsups, max_nz, 0, &mut bounds, &mut hits);
            std::hint::black_box(&hits);
        }),
    ]
}

struct Measured {
    generate: f64,
    dedup: f64,
    tree_filter: f64,
    elementarity: f64,
    total: f64,
    efms: usize,
    tier: String,
}

impl Measured {
    /// The BENCH_pr1 comparison basis: dedup + tree filter + elementarity.
    fn filtered(&self) -> f64 {
        self.dedup + self.tree_filter + self.elementarity
    }
}

/// Layer 3: whole run, best-of-`reps` on total time. `pattern_trees` is
/// off: the kernel pipeline's adjacency test is the count-pruned slab
/// scan (dense `subset_any` batches), which is what this PR accelerates —
/// the tree pipeline it replaces is the BENCH_pr1 baseline.
fn run_whole(net: &efm_metnet::MetabolicNetwork, kernel: KernelKind, reps: usize) -> Measured {
    let opts = EfmOptions {
        test: CandidateTest::Adjacency,
        pattern_trees: false,
        kernel,
        ..harness_options()
    };
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let out: EfmOutcome =
            enumerate_with_scalar::<F64Tol>(net, &opts, &Backend::Rayon).expect("run failed");
        let m = Measured {
            generate: out.stats.phases.generate.as_secs_f64(),
            dedup: out.stats.phases.dedup.as_secs_f64(),
            tree_filter: out.stats.phases.tree_filter.as_secs_f64(),
            elementarity: out.stats.phases.rank_test.as_secs_f64(),
            total: out.stats.total_time.as_secs_f64(),
            efms: out.efms.len(),
            tier: out.stats.kernel_tier.clone(),
        };
        if best.as_ref().is_none_or(|b| m.total < b.total) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

/// `trees.combined_s` from a previously recorded `BENCH_pr1.json`, if one
/// exists next to the working directory (the PR 1 acceptance record for
/// this host). Hand-rolled scan — the file is our own fixed format.
fn pr1_combined(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let trees = text.split("\"trees\"").nth(1)?;
    let combined = trees.split("\"combined_s\":").nth(1)?;
    combined.split([',', '}']).next()?.trim().parse().ok()
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let reps: usize = flag(&flags, "reps").unwrap_or("3").parse().expect("bad --reps");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr6.json").to_string();
    let best = detect_tier();

    println!("kernel_bench — lane ops at {BATCH}-pair batches, width {W} words");
    println!("  detected tier: {best}");
    let lanes = micro(reps, best);
    for l in &lanes {
        println!(
            "  {:16} scalar {:8.1} Mpairs/s   {best} {:8.1} Mpairs/s   ({:.2}x)",
            l.name,
            l.scalar_mpairs,
            l.simd_mpairs,
            l.speedup()
        );
    }

    let net = network_i(scale);
    println!(
        "kernel_bench — Network I ({scale:?}), adjacency slab pipeline, rayon backend, {reps} reps"
    );
    let scalar = run_whole(&net, KernelKind::Scalar, reps);
    println!(
        "  scalar kernel: gen {:.3}s  dedup {:.3}s  tree {:.3}s  elem {:.3}s  (total {:.2}s, {} EFMs)",
        scalar.generate, scalar.dedup, scalar.tree_filter, scalar.elementarity, scalar.total,
        scalar.efms
    );
    let simd = run_whole(&net, KernelKind::Simd, reps);
    println!(
        "  {} kernel:   gen {:.3}s  dedup {:.3}s  tree {:.3}s  elem {:.3}s  (total {:.2}s, {} EFMs)",
        simd.tier, simd.generate, simd.dedup, simd.tree_filter, simd.elementarity, simd.total,
        simd.efms
    );
    assert_eq!(scalar.efms, simd.efms, "kernel tiers must enumerate the same EFM set");

    let total_speedup = scalar.total / simd.total.max(1e-9);
    let filtered_speedup = scalar.filtered() / simd.filtered().max(1e-9);
    println!(
        "  simd vs scalar kernel: dedup+tree+elementarity {filtered_speedup:.2}x, whole run {total_speedup:.2}x"
    );
    let pr1 = pr1_combined("BENCH_pr1.json");
    let pr1_speedup = pr1.map(|c| c / simd.filtered().max(1e-9));
    if let (Some(c), Some(s)) = (pr1, pr1_speedup) {
        println!(
            "  vs BENCH_pr1 tree pipeline (combined {c:.4}s): dedup+tree+elementarity {s:.2}x"
        );
    }

    let mut lanes_json = String::new();
    for (i, l) in lanes.iter().enumerate() {
        if i > 0 {
            lanes_json.push_str(",\n");
        }
        lanes_json.push_str(&format!(
            "    {{ \"op\": \"{}\", \"scalar_mpairs_s\": {:.2}, \"simd_mpairs_s\": {:.2}, \
             \"speedup\": {:.4} }}",
            l.name,
            l.scalar_mpairs,
            l.simd_mpairs,
            l.speedup()
        ));
    }
    let pr1_json = match (pr1, pr1_speedup) {
        (Some(c), Some(s)) => format!(
            ",\n  \"pr1_tree_combined_s\": {c:.6},\n  \"speedup_vs_pr1_tree_pipeline\": {s:.4}"
        ),
        _ => String::new(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"kernel_bench\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"rayon\",\n  \"test\": \"adjacency\",\n  \
         \"reps\": {reps},\n  \"efms\": {efms},\n  \"detected_tier\": \"{best}\",\n  \
         \"lane_ops\": [\n{lanes_json}\n  ],\n  \
         \"scalar\": {{ \"generate_s\": {sg:.6}, \"dedup_s\": {sd:.6}, \"tree_filter_s\": \
         {st:.6}, \"elementarity_s\": {se:.6}, \"combined_s\": {sc:.6}, \"total_s\": {stot:.6} \
         }},\n  \
         \"simd\": {{ \"tier\": \"{vt}\", \"generate_s\": {vg:.6}, \"dedup_s\": {vd:.6}, \
         \"tree_filter_s\": {vtf:.6}, \"elementarity_s\": {ve:.6}, \"combined_s\": {vc:.6}, \
         \"total_s\": {vtot:.6} }},\n  \
         \"dedup_elementarity_speedup\": {filtered_speedup:.4},\n  \
         \"total_speedup\": {total_speedup:.4}{pr1_json}\n}}\n",
        efms = simd.efms,
        sg = scalar.generate,
        sd = scalar.dedup,
        st = scalar.tree_filter,
        se = scalar.elementarity,
        sc = scalar.filtered(),
        stot = scalar.total,
        vt = simd.tier,
        vg = simd.generate,
        vd = simd.dedup,
        vtf = simd.tree_filter,
        ve = simd.elementarity,
        vc = simd.filtered(),
        vtot = simd.total,
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
}
