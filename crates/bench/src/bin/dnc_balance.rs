//! PR 5 acceptance benchmark: divide-and-conquer subset scheduling —
//! sequential subsets versus the adaptive work-stealing schedule.
//!
//! ```text
//! dnc_balance [--scale toy|lite|full] [--workers 4] [--qsub 4]
//!             [--out BENCH_pr5.json]
//! ```
//!
//! The `2^qsub` subsets of the paper's divide-and-conquer split are wildly
//! unequal (Table III: 274 919 vs 599 344 EFMs across the four subsets of
//! one 2-way split), so naive static assignment leaves workers idle. This
//! harness runs the same partition under `--dnc-schedule serial` and
//! `--dnc-schedule steal`, checks the EFM sets are identical, and records:
//!
//! * the **imbalance ratio** (max/mean per-subset time) that makes
//!   scheduling matter in the first place;
//! * the **measured** wall-clock speedup of the stealing schedule — honest
//!   but bounded by the host's physical cores (this container has one);
//! * the **modeled bulk-synchronous speedup**: the longest-processing-time
//!   makespan of the measured per-subset times over `workers` workers,
//!   i.e. the speedup the stealing schedule achieves when every worker is
//!   a real core (the convention of README "Known deviations": physical
//!   scaling beyond the host's core count is reported under the
//!   bulk-synchronous model).

use efm_bench::{flag, harness_options, network_i, parse_cli, pick_partition, Scale};
use efm_core::{
    enumerate_divide_conquer_scheduled_with_scalar, Backend, DncConfig, DncSchedule, EfmOutcome,
};
use efm_numeric::F64Tol;
use std::time::Instant;

/// Longest-processing-time list scheduling of `times` onto `workers`
/// identical machines; returns the makespan.
fn lpt_makespan(times: &[f64], workers: usize) -> f64 {
    let mut sorted: Vec<f64> = times.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut loads = vec![0.0f64; workers.max(1)];
    for t in sorted {
        let min = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        loads[min] += t;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

fn run(
    net: &efm_metnet::MetabolicNetwork,
    names: &[&str],
    schedule: DncSchedule,
    workers: usize,
) -> (EfmOutcome, f64) {
    let dnc = DncConfig { schedule, workers, ..Default::default() };
    let start = Instant::now();
    let out = enumerate_divide_conquer_scheduled_with_scalar::<F64Tol>(
        net,
        &harness_options(),
        names,
        &Backend::Serial,
        &dnc,
    )
    .expect("divide-and-conquer run failed");
    (out, start.elapsed().as_secs_f64())
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let workers: usize = flag(&flags, "workers").unwrap_or("4").parse().expect("bad --workers");
    let qsub: usize = flag(&flags, "qsub").unwrap_or("4").parse().expect("bad --qsub");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr5.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let net = network_i(scale);
    let (red, _) = efm_metnet::compress(&net);
    let partition = pick_partition(&net, &red, &["R89r", "R74r", "R90r", "R22r"], qsub);
    assert_eq!(partition.len(), qsub, "network has too few reversible reactions for --qsub {qsub}");
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    println!(
        "dnc_balance — Network I ({scale:?}), partition {{{}}} ({} subsets), \
         {workers} workers, {host_cores} host core(s)",
        partition.join(","),
        1usize << qsub
    );

    let (serial_out, serial_wall) = run(&net, &names, DncSchedule::Serial, workers);
    let (steal_out, steal_wall) = run(&net, &names, DncSchedule::Steal, workers);
    assert_eq!(serial_out.efms, steal_out.efms, "schedules must agree on the EFM set");

    let times: Vec<f64> = serial_out
        .subsets
        .iter()
        .filter(|s| !s.skipped_empty)
        .map(|s| s.stats.total_time.as_secs_f64())
        .collect();
    let sequential: f64 = times.iter().sum();
    let mean = sequential / times.len().max(1) as f64;
    let max = times.iter().cloned().fold(0.0, f64::max);
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    let makespan = lpt_makespan(&times, workers);
    let modeled_speedup = if makespan > 0.0 { sequential / makespan } else { 1.0 };
    let measured_speedup = serial_wall / steal_wall.max(1e-9);

    println!("  {} EFMs, {} non-empty subsets", serial_out.efms.len(), times.len());
    println!("  per-subset times (s): {times:.3?}");
    println!("  imbalance ratio (max/mean subset time): {imbalance:.2}");
    println!("  sequential subsets: {serial_wall:.3}s   steal x{workers}: {steal_wall:.3}s");
    println!("  measured wall speedup ({host_cores} core host): {measured_speedup:.2}x");
    println!("  modeled bulk-synchronous speedup at {workers} workers: {modeled_speedup:.2}x");

    let times_json: Vec<String> = times.iter().map(|t| format!("{t:.6}")).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"dnc_balance\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"serial-per-subset\",\n  \
         \"partition\": \"{part}\",\n  \"subsets\": {nsub},\n  \"workers\": {workers},\n  \
         \"host_cores\": {host_cores},\n  \"efms\": {efms},\n  \
         \"subset_times_s\": [{times}],\n  \"imbalance_ratio\": {imbalance:.4},\n  \
         \"sequential_wall_s\": {serial_wall:.6},\n  \"steal_wall_s\": {steal_wall:.6},\n  \
         \"measured_wall_speedup\": {measured_speedup:.4},\n  \
         \"modeled_bsp_speedup\": {modeled_speedup:.4},\n  \
         \"speedup_model\": \"LPT makespan of measured per-subset times over {workers} \
         workers; measured wall speedup is bounded by host_cores\"\n}}\n",
        part = partition.join(","),
        nsub = 1usize << qsub,
        efms = serial_out.efms.len(),
        times = times_json.join(", "),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
}
