//! Table IV — Algorithm 3 on S. cerevisiae Network II, partitioned across
//! {R54r, R90r, R60r}, with the paper's four-reaction refinement (adding
//! R22r) for the subsets that exceed memory at three reactions.
//!
//! ```text
//! table4 [--scale toy|lite|full] [--nodes 4] [--float|--exact]
//!        [--subset K]      run a single subset id (0..2^qsub)
//!        [--refine]        split subsets further with R22r (paper's move)
//! ```
//!
//! The paper's full-scale Table IV represents ≈3.5×10¹³ candidate modes
//! (three hours on 256 Blue Gene/P nodes); on a single-core machine run the
//! lite scale, or individual `--subset` rows at full scale (see
//! EXPERIMENTS.md for the recorded runs).

use efm_bench::{
    flag, harness_options, network_ii, paper, parse_cli, pick_partition, Scale, Table,
};
use efm_core::{
    resolve_partition, run_subset, subset_pattern, Backend, EfmError, SupportsAndStats,
};
use efm_metnet::compress;
use efm_numeric::{DynInt, F64Tol};

fn run_one<S: efm_core::EfmScalar>(
    red: &efm_metnet::ReducedNetwork,
    partition: &efm_core::Partition,
    id: usize,
    backend: &Backend,
) -> Result<Option<SupportsAndStats>, EfmError> {
    let q = red.num_reduced();
    let opts = harness_options();
    if q <= 64 {
        run_subset::<efm_bitset::Pattern1, S>(red, partition, id, &opts, backend)
    } else if q <= 128 {
        run_subset::<efm_bitset::Pattern2, S>(red, partition, id, &opts, backend)
    } else {
        run_subset::<efm_bitset::Pattern4, S>(red, partition, id, &opts, backend)
    }
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let exact = flag(&flags, "exact").is_some();
    let refine = flag(&flags, "refine").is_some();
    let only: Option<usize> = flag(&flags, "subset").map(|s| s.parse().expect("bad --subset"));

    let base_partition = ["R54r", "R90r", "R60r"];
    let refine_partition = ["R54r", "R90r", "R60r", "R22r"];
    let requested: Vec<&str> =
        if refine { refine_partition.to_vec() } else { base_partition.to_vec() };

    let net = network_ii(scale);
    let (red, comp) = compress(&net);
    let picked = pick_partition(&net, &red, &requested, requested.len());
    if picked.iter().map(String::as_str).collect::<Vec<_>>() != requested {
        println!("note: using partition {picked:?} (requested {requested:?})");
    }
    let names: Vec<&str> = picked.iter().map(String::as_str).collect();
    println!(
        "Table IV reproduction — Algorithm 3 on Network II, partition {{{}}} ({scale:?} scale, {} ranks, {} arithmetic)",
        names.join(", "),
        nodes,
        if exact { "exact integer" } else { "f64" }
    );
    println!("reduced network {}x{} ({comp:?})", red.stoich.rows(), red.num_reduced());
    println!("paper reference (full scale): {} EFMs total\n", paper::NETWORK_II_EFMS);

    let partition = match resolve_partition(&net, &red, &names) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot build partition: {e}");
            std::process::exit(1);
        }
    };
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(nodes));
    let qsub = partition.reduced_indices.len();
    let ids: Vec<usize> = match only {
        Some(k) => vec![k],
        None => (0..1usize << qsub).collect(),
    };

    let mut table = Table::new(&["subset", "binary pattern", "candidates", "EFMs", "time(s)"]);
    let mut total_efms: u64 = 0;
    let mut total_cands: u64 = 0;
    let mut total_secs = 0.0;
    for id in ids {
        let result = if exact {
            run_one::<DynInt>(&red, &partition, id, &backend)
        } else {
            run_one::<F64Tol>(&red, &partition, id, &backend)
        };
        match result {
            Ok(Some((sups, stats))) => {
                total_efms += sups.len() as u64;
                total_cands += stats.candidates_generated;
                total_secs += stats.total_time.as_secs_f64();
                table.row(vec![
                    id.to_string(),
                    subset_pattern(&partition, id),
                    stats.candidates_generated.to_string(),
                    sups.len().to_string(),
                    format!("{:.2}", stats.total_time.as_secs_f64()),
                ]);
            }
            Ok(None) => {
                table.row(vec![
                    id.to_string(),
                    subset_pattern(&partition, id),
                    "0".into(),
                    "0 (provably empty)".into(),
                    "0.00".into(),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    id.to_string(),
                    subset_pattern(&partition, id),
                    "-".into(),
                    format!("failed: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    table.print();
    println!("\ntotals: {} EFMs, {} candidate modes, {:.2}s", total_efms, total_cands, total_secs);
}
