//! PR 3 acceptance benchmark: fault-free overhead of the self-healing
//! supervisor over the bare cluster backend.
//!
//! ```text
//! supervise_overhead [--scale toy|lite|full] [--nodes 4] [--reps 3]
//!                    [--out BENCH_pr3.json]
//! ```
//!
//! The supervised run pays for the watchdog plumbing (deadline bookkeeping
//! on every collective, per-message sequence numbers) and an
//! every-iteration checkpoint write; the acceptance bar is ≤ 5% wall-time
//! overhead on a fault-free run. Both pipelines must produce the identical
//! EFM set. Results are written as JSON.

use efm_bench::{flag, harness_options, network_i, parse_cli, Scale};
use efm_cluster::ClusterConfig;
use efm_core::{enumerate_supervised_with_scalar, enumerate_with_scalar, Backend, SuperviseConfig};
use efm_numeric::F64Tol;
use std::time::Instant;

fn timed<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let reps: usize = flag(&flags, "reps").unwrap_or("3").parse().expect("bad --reps");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr3.json").to_string();

    let net = network_i(scale);
    let opts = harness_options();
    let cluster = ClusterConfig::new(nodes);
    let ckpt = std::env::temp_dir().join(format!("efm-overhead-{}.efck", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    println!("supervise_overhead — Network I ({scale:?}), {nodes} ranks, {reps} reps");

    let backend = Backend::Cluster(cluster.clone());
    let sup = SuperviseConfig::new(&ckpt);
    let mut run_bare =
        || enumerate_with_scalar::<F64Tol>(&net, &opts, &backend).expect("bare run failed");
    let mut run_sup = || {
        let _ = std::fs::remove_file(&ckpt); // each rep starts cold
        enumerate_supervised_with_scalar::<F64Tol>(&net, &opts, &cluster, &sup)
            .expect("supervised run failed")
    };

    // One warmup of each, then *interleaved* best-of-N pairs: run-to-run
    // drift on a shared box dwarfs the quantity under test, and measuring
    // all bare reps before all supervised reps folds that drift into the
    // overhead number.
    let _ = run_bare();
    let _ = run_sup();
    let (mut bare_s, mut sup_s) = (f64::INFINITY, f64::INFINITY);
    let (mut bare, mut supervised) = (None, None);
    for _ in 0..reps {
        let (s, r) = timed(&mut run_bare);
        if s < bare_s {
            (bare_s, bare) = (s, Some(r));
        }
        let (s, r) = timed(&mut run_sup);
        if s < sup_s {
            (sup_s, supervised) = (s, Some(r));
        }
    }
    let (bare, supervised) = (bare.unwrap(), supervised.unwrap());
    let _ = std::fs::remove_file(&ckpt);
    println!("  bare cluster     : {bare_s:.3}s  ({} EFMs)", bare.efms.len());
    println!("  supervised       : {sup_s:.3}s  ({} EFMs)", supervised.efms.len());

    assert_eq!(bare.efms, supervised.efms, "supervision must not change the EFM set");
    assert!(supervised.stats.recovery.is_empty(), "fault-free run must log no recovery events");

    let overhead_pct = (sup_s / bare_s.max(1e-9) - 1.0) * 100.0;
    let within_budget = overhead_pct <= 5.0;
    println!(
        "  overhead: {overhead_pct:+.2}%  (budget ≤ 5%: {})",
        if within_budget { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"supervise_overhead\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"cluster\",\n  \"nodes\": {nodes},\n  \
         \"reps\": {reps},\n  \"efms\": {efms},\n  \"bare_s\": {bare_s:.6},\n  \
         \"supervised_s\": {sup_s:.6},\n  \"overhead_pct\": {overhead_pct:.4},\n  \
         \"budget_pct\": 5.0,\n  \"within_budget\": {within_budget}\n}}\n",
        efms = supervised.efms.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
    assert!(
        within_budget,
        "supervised fault-free overhead {overhead_pct:.2}% exceeds the 5% budget"
    );
}
