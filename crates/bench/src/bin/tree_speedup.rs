//! PR 1 acceptance benchmark: pattern-tree filtering + merged-run dedup
//! versus the classical linear scans, on yeast-lite Network I with the
//! combinatorial (adjacency) elementarity test.
//!
//! ```text
//! tree_speedup [--scale toy|lite|full] [--reps 3] [--out BENCH_pr1.json]
//! ```
//!
//! The compared quantity is the combined wall time of the phases the tree
//! subsystem rewired — sort/merge dedup, duplicate drop against existing
//! modes, and the elementarity test — with `pattern_trees` on vs off on
//! the shared-memory backend. Results are written as JSON.

use efm_bench::{flag, harness_options, network_i, parse_cli, Scale};
use efm_core::{enumerate_with_scalar, Backend, CandidateTest, EfmOptions, EfmOutcome};
use efm_numeric::F64Tol;

struct Measured {
    dedup: f64,
    tree_filter: f64,
    elementarity: f64,
    total: f64,
    efms: usize,
}

impl Measured {
    fn filtered(&self) -> f64 {
        self.dedup + self.tree_filter + self.elementarity
    }
}

fn run(net: &efm_metnet::MetabolicNetwork, trees: bool, reps: usize) -> Measured {
    let opts =
        EfmOptions { test: CandidateTest::Adjacency, pattern_trees: trees, ..harness_options() };
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let out: EfmOutcome =
            enumerate_with_scalar::<F64Tol>(net, &opts, &Backend::Rayon).expect("run failed");
        let m = Measured {
            dedup: out.stats.phases.dedup.as_secs_f64(),
            tree_filter: out.stats.phases.tree_filter.as_secs_f64(),
            elementarity: out.stats.phases.rank_test.as_secs_f64(),
            total: out.stats.total_time.as_secs_f64(),
            efms: out.efms.len(),
        };
        if best.as_ref().is_none_or(|b| m.filtered() < b.filtered()) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let reps: usize = flag(&flags, "reps").unwrap_or("3").parse().expect("bad --reps");
    let out_path = flag(&flags, "out").unwrap_or("BENCH_pr1.json").to_string();
    let net = network_i(scale);

    println!("tree_speedup — Network I ({scale:?}), adjacency test, rayon backend, {reps} reps");
    let naive = run(&net, false, reps);
    println!(
        "  linear scans : dedup {:.3}s  tree-filter {:.3}s  elementarity {:.3}s  (total {:.2}s, {} EFMs)",
        naive.dedup, naive.tree_filter, naive.elementarity, naive.total, naive.efms
    );
    let trees = run(&net, true, reps);
    println!(
        "  pattern trees: dedup {:.3}s  tree-filter {:.3}s  elementarity {:.3}s  (total {:.2}s, {} EFMs)",
        trees.dedup, trees.tree_filter, trees.elementarity, trees.total, trees.efms
    );
    assert_eq!(naive.efms, trees.efms, "tree/naive pipelines must agree");

    let speedup = naive.filtered() / trees.filtered().max(1e-9);
    let total_speedup = naive.total / trees.total.max(1e-9);
    println!("  dedup+elementarity speedup: {speedup:.2}x (whole run {total_speedup:.2}x)");

    let json = format!(
        "{{\n  \"benchmark\": \"tree_speedup\",\n  \"network\": \"yeast_network_i\",\n  \
         \"scale\": \"{scale:?}\",\n  \"backend\": \"rayon\",\n  \"test\": \"adjacency\",\n  \
         \"reps\": {reps},\n  \"efms\": {efms},\n  \"naive\": {{ \"dedup_s\": {nd:.6}, \
         \"tree_filter_s\": {nt:.6}, \"elementarity_s\": {ne:.6}, \"combined_s\": {nc:.6}, \
         \"total_s\": {ntot:.6} }},\n  \"trees\": {{ \"dedup_s\": {td:.6}, \"tree_filter_s\": \
         {tt:.6}, \"elementarity_s\": {te:.6}, \"combined_s\": {tc:.6}, \"total_s\": {ttot:.6} \
         }},\n  \"dedup_elementarity_speedup\": {speedup:.4},\n  \"total_speedup\": \
         {total_speedup:.4}\n}}\n",
        efms = trees.efms,
        nd = naive.dedup,
        nt = naive.tree_filter,
        ne = naive.elementarity,
        nc = naive.filtered(),
        ntot = naive.total,
        td = trees.dedup,
        tt = trees.tree_filter,
        te = trees.elementarity,
        tc = trees.filtered(),
        ttot = trees.total,
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("  wrote {out_path}");
}
