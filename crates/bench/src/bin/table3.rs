//! Table III — the combined (divide-and-conquer) parallel Nullspace
//! Algorithm (Algorithm 3) on Network I, partitioned across {R89r, R74r}.
//!
//! ```text
//! table3 [--scale toy|lite|full] [--nodes 4] [--float|--exact]
//!        [--partition R89r,R74r]
//! ```
//!
//! Reports one row per subset (EFMs, candidates, phase times) plus the
//! cumulative totals the paper compares against the unsplit run.

use efm_bench::{flag, harness_options, network_i, paper, parse_cli, pick_partition, Scale, Table};
use efm_core::{enumerate_divide_conquer_with_scalar, Backend, EfmOutcome};
use efm_numeric::{DynInt, F64Tol};

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let nodes: usize = flag(&flags, "nodes").unwrap_or("4").parse().expect("bad --nodes");
    let exact = flag(&flags, "exact").is_some();
    let requested: Vec<String> = flag(&flags, "partition")
        .unwrap_or("R89r,R74r")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let net = network_i(scale);
    let (red, _) = efm_metnet::compress(&net);
    let preferred: Vec<&str> = requested.iter().map(String::as_str).collect();
    let partition = pick_partition(&net, &red, &preferred, requested.len());
    if partition != requested {
        println!(
            "note: requested partition {requested:?} is not fully usable at this scale; using {partition:?}"
        );
    }
    let names: Vec<&str> = partition.iter().map(String::as_str).collect();
    println!(
        "Table III reproduction — Algorithm 3 on Network I, partition {{{}}} ({scale:?} scale, {} ranks, {} arithmetic)",
        partition.join(", "),
        nodes,
        if exact { "exact integer" } else { "f64" }
    );
    println!(
        "paper reference (full scale): subsets {:?} EFMs, total {} EFMs, {} candidates\n",
        paper::TABLE3_SUBSET_EFMS,
        paper::NETWORK_I_EFMS,
        paper::NETWORK_I_SPLIT_CANDIDATES
    );

    let opts = harness_options();
    let backend = Backend::Cluster(efm_cluster::ClusterConfig::new(nodes));
    let out: EfmOutcome = if exact {
        enumerate_divide_conquer_with_scalar::<DynInt>(&net, &opts, &names, &backend)
            .expect("run failed")
    } else {
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &opts, &names, &backend)
            .expect("run failed")
    };

    let mut table = Table::new(&[
        "subset",
        "pattern",
        "EFMs",
        "candidates",
        "pruned",
        "rank tests",
        "comm MB",
        "gen(s)",
        "dedup(s)",
        "tree(s)",
        "rank(s)",
        "comm(s)",
        "merge(s)",
        "total(s)",
    ]);
    for s in &out.subsets {
        table.row(vec![
            s.id.to_string(),
            s.pattern.clone(),
            s.efm_count.to_string(),
            s.stats.candidates_generated.to_string(),
            s.stats.tree_pruned.to_string(),
            s.stats.rank_tests.to_string(),
            format!("{:.1}", s.stats.comm_bytes as f64 / 1e6),
            format!("{:.2}", s.stats.phases.generate.as_secs_f64()),
            format!("{:.2}", s.stats.phases.dedup.as_secs_f64()),
            format!("{:.2}", s.stats.phases.tree_filter.as_secs_f64()),
            format!("{:.2}", s.stats.phases.rank_test.as_secs_f64()),
            format!("{:.2}", s.stats.phases.communicate.as_secs_f64()),
            format!("{:.2}", s.stats.phases.merge.as_secs_f64()),
            format!("{:.2}", s.stats.total_time.as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "\ncumulative: {} EFMs, {} candidate modes, {:.2}s total",
        out.efms.len(),
        out.stats.candidates_generated,
        out.stats.total_time.as_secs_f64()
    );
    println!(
        "cumulative counters: pruned={} dedup hits={} rank tests={} comm={} msgs / {:.1} MB",
        out.stats.tree_pruned,
        out.stats.dedup_hits,
        out.stats.rank_tests,
        out.stats.comm_messages,
        out.stats.comm_bytes as f64 / 1e6
    );
    println!("(paper: divide-and-conquer cut candidates from 159.6e9 to 81.7e9 and time\n from 208.98s to 141.6s at 16 cores)");
}
