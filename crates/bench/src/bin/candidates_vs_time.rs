//! §IV.A — "Computation time is proportional to the number of generated
//! intermediate elementary modes."
//!
//! Sweeps a family of synthetic layered networks whose EFM count (and
//! hence candidate count) grows exponentially, printing candidates vs wall
//! time so the proportionality claim can be read off directly; then prints
//! the same comparison between the unsplit and split yeast runs.
//!
//! ```text
//! candidates_vs_time [--scale toy|lite|full] [--max-stages 7]
//! ```

use efm_bench::{flag, harness_options, network_i, parse_cli, pick_partition, Scale, Table};
use efm_core::{enumerate_divide_conquer_with_scalar, enumerate_with_scalar, Backend};
use efm_metnet::generator::layered_branches;
use efm_numeric::F64Tol;

fn main() {
    let (flags, _) = parse_cli();
    let scale = Scale::parse(flag(&flags, "scale").unwrap_or("lite")).expect("bad --scale");
    let max_stages: usize =
        flag(&flags, "max-stages").unwrap_or("7").parse().expect("bad --max-stages");
    let opts = harness_options();

    println!("== synthetic sweep: layered_branches(stages, 3) ==");
    let mut table = Table::new(&["stages", "EFMs", "candidates", "time(s)", "ns/candidate"]);
    for stages in 2..=max_stages {
        let net = layered_branches(stages, 3);
        let out = enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial)
            .expect("synthetic run failed");
        let t = out.stats.total_time.as_secs_f64();
        let c = out.stats.candidates_generated.max(1);
        table.row(vec![
            stages.to_string(),
            out.efms.len().to_string(),
            out.stats.candidates_generated.to_string(),
            format!("{t:.3}"),
            format!("{:.1}", t * 1e9 / c as f64),
        ]);
    }
    table.print();
    println!("(a roughly constant ns/candidate column is the paper's proportionality claim)");

    println!("\n== yeast Network I: unsplit vs divide-and-conquer ==");
    let net = network_i(scale);
    let unsplit =
        enumerate_with_scalar::<F64Tol>(&net, &opts, &Backend::Serial).expect("unsplit run failed");
    let partition = pick_partition(&net, &unsplit.reduced, &["R89r", "R74r"], 2);
    let refs: Vec<&str> = partition.iter().map(String::as_str).collect();
    let split =
        enumerate_divide_conquer_with_scalar::<F64Tol>(&net, &opts, &refs, &Backend::Serial)
            .expect("split run failed");
    let mut t2 = Table::new(&["variant", "EFMs", "candidates", "time(s)"]);
    t2.row(vec![
        "Algorithm 2 (unsplit)".into(),
        unsplit.efms.len().to_string(),
        unsplit.stats.candidates_generated.to_string(),
        format!("{:.2}", unsplit.stats.total_time.as_secs_f64()),
    ]);
    t2.row(vec![
        format!("Algorithm 3 {{{}}}", partition.join(",")),
        split.efms.len().to_string(),
        split.stats.candidates_generated.to_string(),
        format!("{:.2}", split.stats.total_time.as_secs_f64()),
    ]);
    t2.print();
    println!(
        "(the split run should generate fewer candidates and finish sooner — Tables II vs III)"
    );
}
