//! Shared harness utilities for the table-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table of the paper's
//! evaluation (see DESIGN.md §5 for the experiment index). This library
//! provides the common pieces: scaled workload presets, paper reference
//! numbers, and table formatting.

use efm_core::{EfmOptions, RunStats};
use efm_metnet::{yeast, MetabolicNetwork};
use std::time::Duration;

/// Paper reference numbers (Tables II–IV) for side-by-side reporting.
pub mod paper {
    /// Total EFMs of Network I (Tables II and III).
    pub const NETWORK_I_EFMS: u64 = 1_515_314;
    /// Total candidate modes of the unsplit Network I run (Table II).
    pub const NETWORK_I_CANDIDATES: u64 = 159_599_700_951;
    /// Total candidate modes of the {R89r, R74r} split (Table III).
    pub const NETWORK_I_SPLIT_CANDIDATES: u64 = 81_714_944_316;
    /// Per-subset EFM counts of Table III, in subset order
    /// (R̄89 R̄74, R̄89 R74, R89 R̄74, R89 R74 — overbar = zero flux).
    pub const TABLE3_SUBSET_EFMS: [u64; 4] = [274_919, 599_344, 207_533, 433_518];
    /// Total EFMs of Network II (Table IV).
    pub const NETWORK_II_EFMS: u64 = 49_764_544;
    /// Serial total time of Table II in seconds (1 core, Intel Xeon 2008).
    pub const TABLE2_SERIAL_SECONDS: f64 = 2894.40;
    /// Table II per-core totals: (cores, total seconds).
    pub const TABLE2_TOTALS: [(u32, f64); 7] = [
        (1, 2894.40),
        (2, 1490.85),
        (4, 761.29),
        (8, 404.33),
        (16, 208.98),
        (32, 115.46),
        (64, 61.87),
    ];
}

/// Workload scale presets for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The toy network of Fig. 1 (instant; smoke-test the harness).
    Toy,
    /// A shrunken yeast variant sized for seconds on one core.
    Lite,
    /// The full published workload (minutes to hours on one core).
    Full,
}

impl Scale {
    /// Parses `toy|lite|full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "toy" => Some(Scale::Toy),
            "lite" => Some(Scale::Lite),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Network I at the requested scale.
///
/// The `lite` variant removes the pentose-phosphate shunt entry (R15) and
/// the lumped biomass reaction (R70): both are high-degree hubs that
/// multiply the mode count without changing the algorithmic structure, so
/// the lite workload preserves the shape of every experiment at ~1/50 the
/// EFM count.
pub fn network_i(scale: Scale) -> MetabolicNetwork {
    match scale {
        Scale::Toy => efm_metnet::examples::toy_network(),
        Scale::Full => yeast::network_i(),
        Scale::Lite => {
            let text: String = yeast::NETWORK_I_TEXT
                .lines()
                .filter(|l| {
                    let name = l.split(':').next().unwrap_or("").trim();
                    name != "R15" && name != "R70"
                })
                .map(|l| format!("{l}\n"))
                .collect();
            efm_metnet::parse_network(&text).expect("lite network is well-formed")
        }
    }
}

/// Network II at the requested scale (lite applies the same trimming).
pub fn network_ii(scale: Scale) -> MetabolicNetwork {
    match scale {
        Scale::Toy => efm_metnet::examples::toy_network(),
        Scale::Full => yeast::network_ii(),
        Scale::Lite => {
            let text: String = yeast::NETWORK_II_TEXT
                .lines()
                .filter(|l| {
                    let name = l.split(':').next().unwrap_or("").trim();
                    name != "R15" && name != "R70"
                })
                .map(|l| format!("{l}\n"))
                .collect();
            efm_metnet::parse_network(&text).expect("lite network is well-formed")
        }
    }
}

/// Chooses a usable divide-and-conquer partition: keeps the preferred
/// reactions that are still reversible, pivotal, and distinct in the
/// reduced network, topping up with further qualifying reduced reactions
/// until `k` are found. Scaled-down networks can turn the paper's
/// partition reactions irreversible (the LP sign analysis fixes their
/// direction) or non-pivotal (free kernel columns cannot be ordered last),
/// so harnesses fall back transparently and report what they used.
pub fn pick_partition(
    net: &MetabolicNetwork,
    red: &efm_metnet::ReducedNetwork,
    preferred: &[&str],
    k: usize,
) -> Vec<String> {
    // Pivot (dependent) columns of the unsplit kernel: only those can be
    // ordered last, which Proposition 1 requires of partition reactions.
    let pivotal: Vec<usize> =
        efm_core::build_problem::<efm_numeric::DynInt>(red, &EfmOptions::default())
            .map(|p| {
                p.row_order[p.free_count..]
                    .iter()
                    .filter(|&&c| c < red.num_reduced())
                    .map(|&c| p.col_to_reduced[c])
                    .collect()
            })
            .unwrap_or_default();
    let mut chosen: Vec<String> = Vec::new();
    let mut reduced_used: Vec<usize> = Vec::new();
    let consider = |name: &str, chosen: &mut Vec<String>, used: &mut Vec<usize>| {
        if chosen.len() >= k {
            return;
        }
        if let Some(orig) = net.reaction_index(name) {
            if let Some(r) = red.reduced_index_of(orig) {
                if red.reversible[r] && pivotal.contains(&r) && !used.contains(&r) {
                    used.push(r);
                    chosen.push(name.to_string());
                }
            }
        }
    };
    for name in preferred {
        consider(name, &mut chosen, &mut reduced_used);
    }
    if chosen.len() < k {
        for rxn in &net.reactions {
            consider(&rxn.name, &mut chosen, &mut reduced_used);
        }
    }
    chosen
}

/// Default options for harness runs.
pub fn harness_options() -> EfmOptions {
    EfmOptions::default()
}

/// Formats a `Duration` in seconds with two decimals (paper style).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Prints a phase-breakdown row in the style of Table II.
pub fn print_phase_rows(stats: &RunStats) {
    println!("  gen cand    (sec)  {}", secs(stats.phases.generate));
    println!("  sort/dedup  (sec)  {}", secs(stats.phases.dedup));
    println!("  tree filter (sec)  {}", secs(stats.phases.tree_filter));
    println!("  rank test   (sec)  {}", secs(stats.phases.rank_test));
    println!("  communicate (sec)  {}", secs(stats.phases.communicate));
    println!("  merge       (sec)  {}", secs(stats.phases.merge));
    println!("  total       (sec)  {}", secs(stats.total_time));
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row width");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Parses `--key value` style arguments into (key, value) pairs plus
/// positional arguments.
pub fn parse_cli() -> (Vec<(String, String)>, Vec<String>) {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = if it.peek().is_some_and(|n| !n.starts_with("--")) {
                it.next().unwrap()
            } else {
                String::from("true")
            };
            flags.push((key.to_string(), val));
        } else {
            positional.push(a);
        }
    }
    (flags, positional)
}

/// Looks up a flag value.
pub fn flag<'a>(flags: &'a [(String, String)], key: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("toy"), Some(Scale::Toy));
        assert_eq!(Scale::parse("lite"), Some(Scale::Lite));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn lite_networks_are_smaller_but_valid() {
        let full = network_i(Scale::Full);
        let lite = network_i(Scale::Lite);
        assert_eq!(full.num_reactions(), 78);
        assert_eq!(lite.num_reactions(), 76);
        assert!(lite.validate().is_empty());
        let lite2 = network_ii(Scale::Lite);
        assert_eq!(lite2.num_reactions(), 81);
        assert!(lite2.validate().is_empty());
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
